//! The `BENCH_hpl.json` emitter: serializes a sweep's phase traces into the
//! stable schema the `cargo xtask bench` regression gate consumes.
//!
//! Schema (`rhpl-bench-v1`) — one file per invocation:
//!
//! ```json
//! {
//!   "schema": "rhpl-bench-v1",
//!   "aggregate_gflops": 1.23,
//!   "runs": [{
//!     "tv": "WC112R16", "n": 192, "nb": 32, "p": 2, "q": 2,
//!     "schedule": "split-update:0.5",
//!     "mode": "hpl", "element": "f64",
//!     "fact_seconds": 0.0, "fact_gflops": 0.0, "sweeps": 0,
//!     "wall_seconds": 0.01, "gflops": 1.2, "residual": 0.003, "passed": true,
//!     "overlap_efficiency": 0.4, "seq_hash": "0x1234abcd...",
//!     "dropped_spans": 0,
//!     "phase_totals": { "fact_ns": 1, "fact_comm_ns": 1, ... },
//!     "iterations": [{ "iter": 0, "phases": { ... } }],
//!     "ranks": [{ "rank": 0, "dropped": 0, "spans": [{ "iter": 0,
//!       "phase": "Fact", "start_ns": 1, "dur_ns": 2, "bytes": 0,
//!       "hidden": false }] }]
//!   }]
//! }
//! ```
//!
//! The per-iteration table is the critical-path view (per-rank phase sums,
//! maxima across ranks) matching the paper's Fig 7; `overlap_efficiency` is
//! hidden-comm-time / total-comm-time (see `hpl_trace::report`).

use hpl_trace::report::{
    iteration_table, overlap_efficiency, phase_totals, rank_traces, seq_hash, IterRow, PhaseTotals,
    RankTrace,
};

use crate::runner::RunRecord;

/// Schema identifier written to every file; bump on breaking changes.
pub const SCHEMA: &str = "rhpl-bench-v1";

/// Top level of `BENCH_hpl.json`.
#[derive(Debug, serde::Serialize)]
pub struct BenchFile {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// HPL-accounted FLOPs of all runs over their summed wall time.
    pub aggregate_gflops: f64,
    /// One entry per sweep combination.
    pub runs: Vec<RunReport>,
}

/// One benchmark combination with its trace-derived metrics.
#[derive(Debug, serde::Serialize)]
pub struct RunReport {
    /// Classic `T/V` code identifying the variant.
    pub tv: String,
    /// Problem size.
    pub n: usize,
    /// Blocking factor.
    pub nb: usize,
    /// Grid rows.
    pub p: usize,
    /// Grid columns.
    pub q: usize,
    /// Schedule name (`simple`, `lookahead`, `split-update:<frac>`).
    pub schedule: String,
    /// Benchmark mode: `hpl` (classic FP64) or `mxp` (mixed precision).
    pub mode: String,
    /// Element type the factorization ran in (`f64` / `f32`).
    pub element: String,
    /// Wall time of the low-precision factorization + initial solve
    /// (seconds; 0 outside `--mxp`).
    pub fact_seconds: f64,
    /// GFLOPS over the low-precision factorization alone — the
    /// mixed-precision headline rate (0 outside `--mxp`).
    pub fact_gflops: f64,
    /// Refinement sweeps to double accuracy (0 outside `--mxp`).
    pub sweeps: u64,
    /// DGEMM microkernel the process resolved to (`scalar` / `simd`).
    pub kernel: String,
    /// Mailbox implementation the fabric resolved to (`lockfree` / `mutex`,
    /// from `RHPL_MAILBOX`).
    pub mailbox: String,
    /// Transport the universe resolved to (`inproc` / `shm` / `tcp`, from
    /// `RHPL_TRANSPORT`).
    pub transport: String,
    /// Per-directed-link transport counters of the most recent run (empty
    /// under the in-process fabric, which moves no bytes).
    pub links: Vec<LinkReport>,
    /// Wall time of factorization + solve (seconds).
    pub wall_seconds: f64,
    /// HPL score.
    pub gflops: f64,
    /// Scaled residual.
    pub residual: f64,
    /// Residual beat the threshold.
    pub passed: bool,
    /// Communication retries (timed-out receive rounds), summed over ranks.
    pub retries: u64,
    /// Supervisor restarts that contributed to this run (0 outside the
    /// fault-recovery path).
    pub recoveries: u64,
    /// Hidden-comm-time / total-comm-time over all ranks.
    pub overlap_efficiency: f64,
    /// Deterministic hash of the phase sequence (hex), durations excluded.
    pub seq_hash: String,
    /// Ring-buffer evictions summed over ranks (0 unless the run was longer
    /// than the configured trace capacity).
    pub dropped_spans: u64,
    /// Critical-path aggregate: per-rank phase sums, maxima across ranks.
    pub phase_totals: PhaseTotals,
    /// Per-iteration critical-path phase table (Fig 7).
    pub iterations: Vec<IterRow>,
    /// The raw per-rank span streams.
    pub ranks: Vec<RankTrace>,
}

/// One directed transport link's byte/frame/latency counters.
#[derive(Debug, serde::Serialize)]
pub struct LinkReport {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Encoded frame bytes sent (headers + payload + trailers).
    pub bytes: u64,
    /// Frames sent.
    pub frames: u64,
    /// Cumulative wall time spent inside transport sends (nanoseconds).
    pub send_ns: u64,
}

/// Builds one [`RunReport`] from a finished record.
pub fn run_report(rec: &RunRecord) -> RunReport {
    let schedule = match rec.cfg.schedule {
        rhpl_core::config::Schedule::Simple => "simple".to_string(),
        rhpl_core::config::Schedule::LookAhead => "lookahead".to_string(),
        rhpl_core::config::Schedule::SplitUpdate { frac } => format!("split-update:{frac}"),
    };
    RunReport {
        tv: rec.tv.clone(),
        n: rec.cfg.n,
        nb: rec.cfg.nb,
        p: rec.cfg.p,
        q: rec.cfg.q,
        schedule,
        mode: rec.mode().to_string(),
        element: rec.element.to_string(),
        fact_seconds: rec.mxp.as_ref().map_or(0.0, |m| m.fact_seconds),
        fact_gflops: rec.mxp.as_ref().map_or(0.0, |m| m.fact_gflops),
        sweeps: rec.mxp.as_ref().map_or(0, |m| m.sweeps as u64),
        kernel: hpl_blas::kernels::active().name().to_string(),
        mailbox: hpl_comm::active_mailbox_name().to_string(),
        transport: hpl_comm::active_transport_name().to_string(),
        links: hpl_comm::last_run_link_stats()
            .iter()
            .map(|l| LinkReport {
                src: l.src,
                dst: l.dst,
                bytes: l.bytes,
                frames: l.frames,
                send_ns: l.send_ns,
            })
            .collect(),
        wall_seconds: rec.time,
        gflops: rec.gflops,
        residual: rec.residual,
        passed: rec.passed,
        retries: rec.retries,
        recoveries: rec.recoveries,
        overlap_efficiency: overlap_efficiency(&rec.traces),
        seq_hash: format!("{:#018x}", seq_hash(&rec.traces)),
        dropped_spans: rec.traces.iter().map(|t| t.dropped).sum(),
        phase_totals: phase_totals(&rec.traces),
        iterations: iteration_table(&rec.traces, rec.cfg.iterations()),
        ranks: rank_traces(&rec.traces),
    }
}

/// Assembles the whole file from a sweep's records.
pub fn bench_file(records: &[RunRecord]) -> BenchFile {
    let flops: f64 = records.iter().map(|r| r.cfg.flops()).sum();
    let wall: f64 = records.iter().map(|r| r.time).sum();
    BenchFile {
        schema: SCHEMA.to_string(),
        aggregate_gflops: if wall > 0.0 { flops / wall / 1e9 } else { 0.0 },
        runs: records.iter().map(run_report).collect(),
    }
}

/// Serializes and writes `BENCH_hpl.json` to `path`.
pub fn write_bench_json(records: &[RunRecord], path: &str) -> std::io::Result<()> {
    let file = bench_file(records);
    let json = serde_json::to_string(&file).expect("bench schema serializes infallibly");
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dat::{parse, SAMPLE};
    use crate::runner::{expand, run_one_traced};

    #[test]
    fn traced_run_produces_well_formed_report() {
        let mut spec = parse(SAMPLE).unwrap();
        spec.ns = vec![96];
        spec.nbs = vec![16];
        let (mut cfg, depth) = expand(&spec, 42, 0.5, 1).remove(0);
        cfg.trace = hpl_trace::TraceOpts::on();
        let rec = run_one_traced(&cfg, depth, spec.threshold).expect("clean run");
        assert!(rec.passed);
        assert_eq!(rec.traces.len(), cfg.ranks());
        let report = run_report(&rec);
        assert_eq!(report.iterations.len(), cfg.iterations());
        // Every iteration's critical path spends time in the row swap and
        // UPDATE; FACT appears in every iteration except the last, whose
        // panel was factored ahead of time under the look-ahead schedule
        // (spans attribute to the iteration in which the work executes).
        for row in &report.iterations {
            assert!(row.phases.row_swap_ns > 0, "iter {} missing RS", row.iter);
            assert!(row.phases.update_ns > 0, "iter {} missing UPDATE", row.iter);
        }
        let last = report.iterations.len() - 1;
        for row in &report.iterations[..last] {
            assert!(row.phases.fact_ns > 0, "iter {} missing FACT", row.iter);
            assert!(row.phases.bcast_ns > 0, "iter {} missing LBCAST", row.iter);
        }
        // The split-update schedule hides comm; the metric must see it.
        assert!(report.overlap_efficiency > 0.0);
        assert_eq!(report.dropped_spans, 0);
        let json = serde_json::to_string(&bench_file(&[rec])).unwrap();
        assert!(json.contains("\"schema\":\"rhpl-bench-v1\""));
        assert!(json.contains("\"phase\":\"Update\""));
    }

    #[test]
    fn untraced_record_serializes_empty_trace_sections() {
        let mut spec = parse(SAMPLE).unwrap();
        spec.ns = vec![64];
        spec.nbs = vec![16];
        let (cfg, depth) = expand(&spec, 42, 0.0, 1).remove(0);
        let rec = run_one_traced(&cfg, depth, spec.threshold).expect("clean run");
        assert!(rec.traces.is_empty());
        let report = run_report(&rec);
        assert_eq!(report.overlap_efficiency, 0.0);
        assert!(report.ranks.is_empty());
    }
}
