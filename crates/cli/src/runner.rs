//! Executes the Cartesian sweep an `HPL.dat` describes and collects one
//! result record per combination, exactly like the reference `xhpl` binary.

use hpl_comm::{Grid, Universe};
use rhpl_core::config::Schedule;
use rhpl_core::{run_hpl, verify, FactOpts, HplConfig, HplError};

use crate::dat::JobSpec;

/// Result of one benchmark combination.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Configuration that produced this record.
    pub cfg: HplConfig,
    /// Encoded variant name (the classic `T/V` column).
    pub tv: String,
    /// Wall time (seconds).
    pub time: f64,
    /// Score in GFLOPS.
    pub gflops: f64,
    /// HPL scaled residual.
    pub residual: f64,
    /// Whether the residual beat the threshold.
    pub passed: bool,
    /// Communication retries (timed-out receive rounds that were re-polled),
    /// summed over ranks.
    pub retries: u64,
    /// Restarts the recovery supervisor performed (0 outside supervised
    /// fault runs).
    pub recoveries: u64,
    /// Per-rank phase traces (empty unless `cfg.trace.enabled`).
    pub traces: Vec<hpl_trace::Trace>,
}

/// Encodes the classic `T/V` column: `W` (wall time), `R`/`C` (process
/// mapping), look-ahead depth, broadcast code, NDIV, PFACT initial, NBMIN.
pub fn encode_tv(cfg: &HplConfig, depth: usize) -> String {
    let order = match cfg.order {
        hpl_comm::GridOrder::RowMajor => 'R',
        hpl_comm::GridOrder::ColumnMajor => 'C',
    };
    let bcast = match cfg.bcast {
        hpl_comm::BcastAlgo::OneRing => '0',
        hpl_comm::BcastAlgo::OneRingM => '1',
        hpl_comm::BcastAlgo::TwoRing => '2',
        hpl_comm::BcastAlgo::TwoRingM => '3',
        hpl_comm::BcastAlgo::Long => '4',
        hpl_comm::BcastAlgo::LongM => '5',
        hpl_comm::BcastAlgo::Binomial => '6',
        hpl_comm::BcastAlgo::Auto => '7',
    };
    let pf = match cfg.fact.variant {
        rhpl_core::FactVariant::Left => 'L',
        rhpl_core::FactVariant::Crout => 'C',
        rhpl_core::FactVariant::Right => 'R',
    };
    format!(
        "W{order}{depth}{bcast}{}{pf}{}",
        cfg.fact.ndiv, cfg.fact.nbmin
    )
}

/// Expands the sweep into concrete configurations (with their depths).
pub fn expand(
    spec: &JobSpec,
    seed: u64,
    split_frac: f64,
    threads: usize,
) -> Vec<(HplConfig, usize)> {
    let mut out = Vec::new();
    for &n in &spec.ns {
        for &nb in &spec.nbs {
            for &(p, q) in &spec.grids {
                for &variant in &spec.pfacts {
                    for &nbmin in &spec.nbmins {
                        for &ndiv in &spec.ndivs {
                            for &bcast in &spec.bcasts {
                                for &depth in &spec.depths {
                                    let mut cfg = HplConfig::new(n, nb, p, q);
                                    cfg.seed = seed;
                                    cfg.order = spec.order;
                                    cfg.bcast = bcast;
                                    cfg.swap = spec.swap;
                                    cfg.fact = FactOpts {
                                        variant,
                                        ndiv,
                                        nbmin,
                                        threads,
                                    };
                                    cfg.schedule = if depth == 0 {
                                        Schedule::Simple
                                    } else if split_frac > 0.0 {
                                        Schedule::SplitUpdate { frac: split_frac }
                                    } else {
                                        Schedule::LookAhead
                                    };
                                    out.push((cfg, depth));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Runs one configuration and verifies it. Any rank's solve or
/// verification failure propagates as the typed [`HplError`] so the
/// caller (CLI driver, bench gate) keeps its recovery and reporting
/// options instead of aborting the whole sweep.
pub fn run_one(cfg: &HplConfig, depth: usize, threshold: f64) -> Result<RunRecord, HplError> {
    run_one_traced(cfg, depth, threshold)
}

/// [`run_one`], keeping each rank's phase trace in the record (traces are
/// present only when `cfg.trace.enabled`; index = rank, the order
/// `Universe::run` returns).
pub fn run_one_traced(
    cfg: &HplConfig,
    depth: usize,
    threshold: f64,
) -> Result<RunRecord, HplError> {
    let results = Universe::run(cfg.ranks(), |comm| run_hpl(comm, cfg));
    let mut results = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    let x = results[0].x.clone();
    let res = Universe::run(cfg.ranks(), |comm| {
        let grid = Grid::new(comm, cfg.p, cfg.q, cfg.order);
        verify(&grid, cfg.n, cfg.nb, cfg.seed, &x)
    });
    let res = res.into_iter().collect::<Result<Vec<_>, _>>()?[0];
    let traces = results.iter_mut().filter_map(|r| r.trace.take()).collect();
    Ok(RunRecord {
        cfg: cfg.clone(),
        tv: encode_tv(cfg, depth),
        time: results[0].wall,
        gflops: results[0].gflops,
        residual: res.scaled,
        passed: res.scaled < threshold,
        retries: results.iter().map(|r| r.retries).sum(),
        recoveries: 0,
        traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dat::{parse, SAMPLE};

    #[test]
    fn expansion_is_cartesian() {
        let mut spec = parse(SAMPLE).unwrap();
        spec.ns = vec![64, 128];
        spec.nbs = vec![8, 16];
        spec.bcasts = vec![hpl_comm::BcastAlgo::OneRing, hpl_comm::BcastAlgo::Long];
        let cfgs = expand(&spec, 1, 0.5, 1);
        assert_eq!(cfgs.len(), 2 * 2 * 2);
    }

    #[test]
    fn tv_encoding() {
        let spec = parse(SAMPLE).unwrap();
        let (cfg, depth) = expand(&spec, 1, 0.5, 1).remove(0);
        assert_eq!(encode_tv(&cfg, depth), "WC112R16");
    }

    #[test]
    fn tiny_run_passes() {
        let mut spec = parse(SAMPLE).unwrap();
        spec.ns = vec![96];
        spec.nbs = vec![16];
        let (cfg, depth) = expand(&spec, 42, 0.5, 1).remove(0);
        let rec = run_one(&cfg, depth, spec.threshold).expect("clean run");
        assert!(rec.passed, "residual {}", rec.residual);
        assert!(rec.gflops > 0.0);
    }
}
