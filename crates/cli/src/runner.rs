//! Executes the Cartesian sweep an `HPL.dat` describes and collects one
//! result record per combination, exactly like the reference `xhpl` binary.

use hpl_blas::ElementSel;
use hpl_comm::{Grid, Universe};
use rhpl_core::config::Schedule;
use rhpl_core::{
    run_hpl, run_hpl_with_element, verify_with_eps, FactOpts, HplConfig, HplError, MatGen,
};

use crate::dat::JobSpec;

/// Result of one benchmark combination.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Configuration that produced this record.
    pub cfg: HplConfig,
    /// Encoded variant name (the classic `T/V` column).
    pub tv: String,
    /// Wall time (seconds).
    pub time: f64,
    /// Score in GFLOPS.
    pub gflops: f64,
    /// HPL scaled residual.
    pub residual: f64,
    /// Whether the residual beat the threshold.
    pub passed: bool,
    /// Communication retries (timed-out receive rounds that were re-polled),
    /// summed over ranks.
    pub retries: u64,
    /// Restarts the recovery supervisor performed (0 outside supervised
    /// fault runs).
    pub recoveries: u64,
    /// Element type the factorization ran in (`"f64"` / `"f32"`).
    pub element: &'static str,
    /// Mixed-precision extras; `Some` only for `--mxp` runs.
    pub mxp: Option<MxpStats>,
    /// Per-rank phase traces (empty unless `cfg.trace.enabled`).
    pub traces: Vec<hpl_trace::Trace>,
}

impl RunRecord {
    /// Benchmark mode this record came from: `"mxp"` when the run was the
    /// mixed-precision benchmark, `"hpl"` for the classic pipeline.
    pub fn mode(&self) -> &'static str {
        if self.mxp.is_some() {
            "mxp"
        } else {
            "hpl"
        }
    }
}

/// The HPL-MxP side of a [`RunRecord`]: what the f32 factorization cost and
/// how the f64 refinement closed the accuracy gap.
#[derive(Clone, Debug)]
pub struct MxpStats {
    /// Refinement sweeps performed after the initial f32 solve.
    pub sweeps: usize,
    /// Wall time of the f32 factorization + initial solve (seconds).
    pub fact_seconds: f64,
    /// GFLOPS over the f32 factorization alone (HPL flop formula).
    pub fact_gflops: f64,
    /// Scaled residual after each sweep, starting with the pure-f32 solve.
    pub history: Vec<f64>,
}

/// Encodes the classic `T/V` column: `W` (wall time), `R`/`C` (process
/// mapping), look-ahead depth, broadcast code, NDIV, PFACT initial, NBMIN.
pub fn encode_tv(cfg: &HplConfig, depth: usize) -> String {
    let order = match cfg.order {
        hpl_comm::GridOrder::RowMajor => 'R',
        hpl_comm::GridOrder::ColumnMajor => 'C',
    };
    let bcast = match cfg.bcast {
        hpl_comm::BcastAlgo::OneRing => '0',
        hpl_comm::BcastAlgo::OneRingM => '1',
        hpl_comm::BcastAlgo::TwoRing => '2',
        hpl_comm::BcastAlgo::TwoRingM => '3',
        hpl_comm::BcastAlgo::Long => '4',
        hpl_comm::BcastAlgo::LongM => '5',
        hpl_comm::BcastAlgo::Binomial => '6',
        hpl_comm::BcastAlgo::Auto => '7',
    };
    let pf = match cfg.fact.variant {
        rhpl_core::FactVariant::Left => 'L',
        rhpl_core::FactVariant::Crout => 'C',
        rhpl_core::FactVariant::Right => 'R',
    };
    format!(
        "W{order}{depth}{bcast}{}{pf}{}",
        cfg.fact.ndiv, cfg.fact.nbmin
    )
}

/// Expands the sweep into concrete configurations (with their depths).
pub fn expand(
    spec: &JobSpec,
    seed: u64,
    split_frac: f64,
    threads: usize,
) -> Vec<(HplConfig, usize)> {
    let mut out = Vec::new();
    for &n in &spec.ns {
        for &nb in &spec.nbs {
            for &(p, q) in &spec.grids {
                for &variant in &spec.pfacts {
                    for &nbmin in &spec.nbmins {
                        for &ndiv in &spec.ndivs {
                            for &bcast in &spec.bcasts {
                                for &depth in &spec.depths {
                                    let mut cfg = HplConfig::new(n, nb, p, q);
                                    cfg.seed = seed;
                                    cfg.order = spec.order;
                                    cfg.bcast = bcast;
                                    cfg.swap = spec.swap;
                                    cfg.fact = FactOpts {
                                        variant,
                                        ndiv,
                                        nbmin,
                                        threads,
                                    };
                                    cfg.schedule = if depth == 0 {
                                        Schedule::Simple
                                    } else if split_frac > 0.0 {
                                        Schedule::SplitUpdate { frac: split_frac }
                                    } else {
                                        Schedule::LookAhead
                                    };
                                    out.push((cfg, depth));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Runs one configuration and verifies it. Any rank's solve or
/// verification failure propagates as the typed [`HplError`] so the
/// caller (CLI driver, bench gate) keeps its recovery and reporting
/// options instead of aborting the whole sweep.
pub fn run_one(cfg: &HplConfig, depth: usize, threshold: f64) -> Result<RunRecord, HplError> {
    run_one_traced(cfg, depth, threshold)
}

/// [`run_one`], keeping each rank's phase trace in the record (traces are
/// present only when `cfg.trace.enabled`; index = rank, the order
/// `Universe::run` returns).
pub fn run_one_traced(
    cfg: &HplConfig,
    depth: usize,
    threshold: f64,
) -> Result<RunRecord, HplError> {
    run_one_element(cfg, depth, threshold, ElementSel::F64)
}

/// [`run_one_traced`] with an explicit pipeline element. Under
/// [`ElementSel::F32`] the whole elimination runs in single precision and
/// the residual gate scales by `f32::EPSILON` — the precision the answer
/// actually carries (the classic `f64` gate would reject every f32 run;
/// recovering double accuracy from f32 factors is [`run_one_mxp`]'s job).
pub fn run_one_element(
    cfg: &HplConfig,
    depth: usize,
    threshold: f64,
    elem: ElementSel,
) -> Result<RunRecord, HplError> {
    let results = Universe::run(cfg.ranks(), |comm| match elem {
        ElementSel::F64 => run_hpl(comm, cfg),
        ElementSel::F32 => {
            let gen = MatGen::new(cfg.seed, cfg.n);
            run_hpl_with_element::<f32>(comm, cfg, &|i, j| gen.entry(i, j))
        }
    });
    let mut results = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    let x = results[0].x.clone();
    let eps = match elem {
        ElementSel::F64 => f64::EPSILON,
        ElementSel::F32 => f32::EPSILON as f64,
    };
    let res = Universe::run(cfg.ranks(), |comm| {
        let grid = Grid::new(comm, cfg.p, cfg.q, cfg.order);
        let gen = MatGen::new(cfg.seed, cfg.n);
        verify_with_eps(&grid, cfg.n, cfg.nb, &|i, j| gen.entry(i, j), &x, eps)
    });
    let res = res.into_iter().collect::<Result<Vec<_>, _>>()?[0];
    let traces = results.iter_mut().filter_map(|r| r.trace.take()).collect();
    Ok(RunRecord {
        cfg: cfg.clone(),
        tv: encode_tv(cfg, depth),
        time: results[0].wall,
        gflops: results[0].gflops,
        residual: res.scaled,
        passed: res.scaled < threshold,
        retries: results.iter().map(|r| r.retries).sum(),
        recoveries: 0,
        element: results[0].element,
        mxp: None,
        traces,
    })
}

/// Runs one configuration as the HPL-MxP benchmark: f32 factorization via
/// the full distributed pipeline, f64 refinement sweeps to double accuracy,
/// judged by HPL's residual gate at `f64::EPSILON` (already computed inside
/// [`hpl_mxp::solve_mxp`] — no separate verify pass needed).
pub fn run_one_mxp(cfg: &HplConfig, depth: usize, threshold: f64) -> Result<RunRecord, HplError> {
    let results = Universe::run(cfg.ranks(), |comm| hpl_mxp::solve_mxp(comm, cfg));
    let mut results = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    let traces = results.iter_mut().filter_map(|r| r.trace.take()).collect();
    let r0 = &results[0];
    Ok(RunRecord {
        cfg: cfg.clone(),
        tv: encode_tv(cfg, depth),
        time: r0.wall,
        gflops: r0.gflops,
        residual: r0.residuals.scaled,
        passed: r0.converged && r0.residuals.scaled < threshold,
        retries: results.iter().map(|r| r.retries).sum(),
        recoveries: 0,
        element: r0.element,
        mxp: Some(MxpStats {
            sweeps: r0.sweeps,
            fact_seconds: r0.fact_seconds,
            fact_gflops: r0.fact_gflops,
            history: r0.history.clone(),
        }),
        traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dat::{parse, SAMPLE};

    #[test]
    fn expansion_is_cartesian() {
        let mut spec = parse(SAMPLE).unwrap();
        spec.ns = vec![64, 128];
        spec.nbs = vec![8, 16];
        spec.bcasts = vec![hpl_comm::BcastAlgo::OneRing, hpl_comm::BcastAlgo::Long];
        let cfgs = expand(&spec, 1, 0.5, 1);
        assert_eq!(cfgs.len(), 2 * 2 * 2);
    }

    #[test]
    fn tv_encoding() {
        let spec = parse(SAMPLE).unwrap();
        let (cfg, depth) = expand(&spec, 1, 0.5, 1).remove(0);
        assert_eq!(encode_tv(&cfg, depth), "WC112R16");
    }

    #[test]
    fn tiny_run_passes() {
        let mut spec = parse(SAMPLE).unwrap();
        spec.ns = vec![96];
        spec.nbs = vec![16];
        let (cfg, depth) = expand(&spec, 42, 0.5, 1).remove(0);
        let rec = run_one(&cfg, depth, spec.threshold).expect("clean run");
        assert!(rec.passed, "residual {}", rec.residual);
        assert!(rec.gflops > 0.0);
    }
}
