//! `rhpl` — HPL.dat-driven benchmark runner.
//!
//! ```text
//! rhpl [HPL.dat]              run the sweep described by the input file
//! rhpl launch HPL.dat --ranks N --transport tcp|shm|inproc
//!                             one OS process per rank, supervised: rendezvous,
//!                             heartbeats, rank-death detection; with
//!                             --ckpt-every K also respawn + resume from the
//!                             latest checkpoint (see rhpl_cli::launch)
//! rhpl --sample               print a ready-to-edit sample HPL.dat
//! rhpl ... --split-frac 0.5   split-update fraction (0 = look-ahead only)
//! rhpl ... --threads 4        FACT threads per rank (SIII.A)
//! rhpl ... --kernel simd      DGEMM microkernel: auto|scalar|simd
//!                             (also settable via RHPL_KERNEL; the flag wins)
//! rhpl ... --mxp              run the HPL-MxP benchmark: f32 factorization
//!                             through the full pipeline, f64 refinement
//!                             sweeps to double accuracy (classic HPL table
//!                             plus the HPL-MxP summary block)
//! rhpl ... --element f32      pipeline element type: f64|f32 (also settable
//!                             via RHPL_ELEMENT; the flag wins). An f32 run
//!                             is gated at f32 accuracy; --mxp is how f32
//!                             factors earn the f64 gate
//! rhpl ... --seed 42          matrix generator seed
//! rhpl ... --trace-json BENCH_hpl.json   emit the per-iteration phase trace
//! rhpl ... --fault SPEC       arm a fault (repeatable); SPEC grammar is
//!                             kind[:param]@rank[:site][:nth][:sticky]
//! rhpl ... --fault-seed S     fault plan seed (with no --fault: a random
//!                             plan derived from the seed)
//! rhpl ... --ckpt-every K     checkpoint the factorization every K panel
//!                             iterations (0 = off); with faults armed this
//!                             enables the restart supervisor
//! rhpl ... --ckpt-dir PATH    keep checkpoints on disk under PATH instead
//!                             of in memory
//! rhpl ... --comm-timeout S   per-receive timeout in seconds (also
//!                             settable via RHPL_COMM_TIMEOUT; the flag wins)
//! ```
//!
//! With any fault flag present the classic table is replaced by the
//! machine-readable `HPLOK`/`HPLERROR` + `FAULTLOG` protocol (see
//! [`rhpl_cli::faults`]); exit code 3 signals a structured failure. Adding
//! `--ckpt-every K` to a faulted run routes through the recovery supervisor
//! ([`rhpl_cli::recover`]): injected rank deaths are survived by restoring
//! all ranks from the last complete checkpoint and resuming mid-stream.

use std::process::ExitCode;

use rhpl_cli::{bench, dat, faults, launch, recover, report, runner};

fn arg_value<T: std::str::FromStr>(args: &[String], key: &str) -> Option<T> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Fabric knobs are read from the environment deep inside library code;
    // reject garbage here with the typed message instead of a late panic.
    if let Err(e) = hpl_comm::config::validate_env() {
        eprintln!("rhpl: configuration error: {e}");
        return ExitCode::from(2);
    }
    if args.iter().any(|a| a == "--sample") {
        print!("{}", dat::SAMPLE);
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: rhpl [HPL.dat] [--split-frac F] [--threads T] [--seed S] \
             [--kernel auto|scalar|simd] [--mxp] [--element f64|f32] \
             [--trace-json PATH] [--fault SPEC]... \
             [--fault-seed S] [--ckpt-every K] [--ckpt-dir PATH] \
             [--comm-timeout SECS] [--sample]\n\
             \x20      rhpl launch [HPL.dat] --ranks N [--transport inproc|shm|tcp] \
             [--ckpt-every K] [--ckpt-dir PATH] [--fault SPEC]...\n\
             launch runs the first sweep combination with one OS process per \
             rank under a supervisor (rendezvous, heartbeats, respawn+resume \
             from checkpoints on rank death)"
        );
        return ExitCode::SUCCESS;
    }
    // The timeout freezes per fabric at construction, so apply the override
    // before any universe spins up.
    if let Some(secs) = arg_value::<u64>(&args, "--comm-timeout") {
        hpl_comm::set_comm_timeout(std::time::Duration::from_secs(secs));
    }
    // The DGEMM kernel freezes at first use, so resolve the flag before any
    // linear algebra runs. Without the flag the RHPL_KERNEL env (or auto
    // detection) decides.
    if let Some(kernel) = arg_value::<String>(&args, "--kernel") {
        match kernel.parse::<hpl_blas::KernelSel>() {
            Ok(sel) => {
                hpl_blas::kernels::select(sel);
            }
            Err(()) => {
                eprintln!("rhpl: --kernel must be auto, scalar or simd (got {kernel})");
                return ExitCode::FAILURE;
            }
        }
    }
    // Element precision: the flag wins over RHPL_ELEMENT (whose value
    // validate_env vetted above), default f64.
    let element = match arg_value::<String>(&args, "--element") {
        Some(elem) => match elem.parse::<hpl_blas::ElementSel>() {
            Ok(sel) => sel,
            Err(()) => {
                eprintln!("rhpl: --element must be f64 or f32 (got {elem})");
                return ExitCode::FAILURE;
            }
        },
        None => hpl_comm::config::env_element().expect("validated above"),
    };
    let mxp = args.iter().any(|a| a == "--mxp");
    // Multi-process modes: `launch` supervises one OS process per rank;
    // `_rank` is the (internal) child entry point it spawns. Both sit after
    // the global knob handling above so --comm-timeout and --kernel apply
    // to children too.
    match args.first().map(String::as_str) {
        Some("launch") => return launch::run_launch(&args[1..]),
        Some("_rank") => return launch::run_rank(&args[1..]),
        _ => {}
    }
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && arg_is_positional(&args, a))
        .cloned()
        .unwrap_or_else(|| "HPL.dat".to_string());
    let split_frac: f64 = arg_value(&args, "--split-frac").unwrap_or(0.5);
    let threads: usize = arg_value(&args, "--threads").unwrap_or(1);
    let seed: u64 = arg_value(&args, "--seed").unwrap_or(42);
    let trace_json: Option<String> = arg_value(&args, "--trace-json");
    let ckpt_every: usize = arg_value(&args, "--ckpt-every").unwrap_or(0);
    let ckpt_dir: Option<String> = arg_value(&args, "--ckpt-dir");

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("rhpl: cannot read {path}: {e}");
            eprintln!("hint: `rhpl --sample > HPL.dat` writes a starting point");
            return ExitCode::FAILURE;
        }
    };
    let spec = match dat::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rhpl: {e}");
            return ExitCode::FAILURE;
        }
    };

    let combos = runner::expand(&spec, seed, split_frac, threads);
    let fault_specs: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--fault")
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect();
    if !fault_specs.is_empty() || args.iter().any(|a| a == "--fault-seed") {
        if mxp {
            eprintln!(
                "rhpl: --mxp does not combine with --fault (fault soak runs the f64 pipeline)"
            );
            return ExitCode::FAILURE;
        }
        let fault_seed: u64 = arg_value(&args, "--fault-seed").unwrap_or(1);
        return run_faulted(
            &combos,
            fault_seed,
            &fault_specs,
            spec.threshold,
            ckpt_every,
            ckpt_dir.as_deref(),
        );
    }
    let max_ranks = combos.iter().map(|(c, _)| c.ranks()).max().unwrap_or(1);
    print!("{}", report::banner(max_ranks));
    print!("{}", report::table_header());
    let mut failed = 0usize;
    let total = combos.len();
    let mut records = Vec::with_capacity(total);
    for (mut cfg, depth) in combos {
        if trace_json.is_some() {
            cfg.trace = hpl_trace::TraceOpts::on();
        }
        if ckpt_every > 0 {
            // Disk stores are re-opened (not wiped): a repeated invocation
            // after an interruption resumes from what the previous process
            // deposited. Each combination gets its own subdirectory.
            let store = match &ckpt_dir {
                Some(dir) => {
                    let sub = std::path::Path::new(dir).join(format!(
                        "{}-n{}-nb{}-{}x{}",
                        runner::encode_tv(&cfg, depth),
                        cfg.n,
                        cfg.nb,
                        cfg.p,
                        cfg.q
                    ));
                    match hpl_ckpt::CkptStore::disk(&sub, cfg.ranks()) {
                        Ok(s) => s,
                        Err(e) => {
                            eprintln!("rhpl: cannot open checkpoint dir: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                None => hpl_ckpt::CkptStore::mem(cfg.ranks()),
            };
            cfg.ckpt = rhpl_core::CkptOpts {
                every: ckpt_every,
                store: Some(store),
                resume: true,
            };
        }
        let run = if mxp {
            runner::run_one_mxp(&cfg, depth, spec.threshold)
        } else {
            runner::run_one_element(&cfg, depth, spec.threshold, element)
        };
        let rec = match run {
            Ok(rec) => rec,
            Err(e) => {
                eprintln!("rhpl: run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", report::format_record(&rec));
        if !rec.passed {
            failed += 1;
        }
        records.push(rec);
    }
    print!("{}", report::footer(total, failed));
    if let Some(path) = &trace_json {
        if let Err(e) = bench::write_bench_json(&records, path) {
            eprintln!("rhpl: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("rhpl: wrote phase trace to {path}");
    }
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Fault-soak mode: every combination runs under a freshly parsed copy of
/// the plan (per-rank fault counters must start at zero for each run) and
/// prints the `HPLOK`/`HPLERROR` + `FAULTLOG` protocol. Exit code 3 for a
/// structured failure, 1 for a wrong answer (`HPLBAD`) or a bad spec.
fn run_faulted(
    combos: &[(rhpl_core::HplConfig, usize)],
    fault_seed: u64,
    fault_specs: &[String],
    threshold: f64,
    ckpt_every: usize,
    ckpt_dir: Option<&str>,
) -> ExitCode {
    // Injected rank deaths unwind as panics; the default hook's backtraces
    // are nondeterministic noise next to the protocol lines. Outcomes are
    // reported exclusively via HPLOK/HPLERROR (a real crash surfaces as
    // kind=rank_failed phase=panic).
    std::panic::set_hook(Box::new(|_| {}));
    let mut structured = false;
    let mut bad = false;
    for (i, (cfg, _depth)) in combos.iter().enumerate() {
        let plan = if fault_specs.is_empty() {
            hpl_faults::FaultPlan::from_seed(fault_seed, cfg.ranks())
        } else {
            match hpl_faults::FaultPlan::parse(fault_seed, fault_specs) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("rhpl: bad --fault spec: {e}");
                    return ExitCode::FAILURE;
                }
            }
        };
        let out = if ckpt_every > 0 {
            let dir = ckpt_dir.map(|d| std::path::Path::new(d).join(format!("combo{i}")));
            recover::run_one_supervised(cfg, plan, threshold, ckpt_every, dir.as_deref())
        } else {
            faults::run_one_faulted(cfg, plan, threshold)
        };
        print!("{}", out.block);
        if !out.ok() {
            if out.structured_error() {
                structured = true;
            } else {
                bad = true;
            }
        }
    }
    if bad {
        ExitCode::FAILURE
    } else if structured {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}

/// A positional arg is one not consumed as a `--key value` pair.
fn arg_is_positional(args: &[String], a: &str) -> bool {
    match args.iter().position(|x| x == a) {
        Some(0) => true,
        Some(i) => !args[i - 1].starts_with("--"),
        None => false,
    }
}
