//! `rhpl` — HPL.dat-driven benchmark runner.
//!
//! ```text
//! rhpl [HPL.dat]              run the sweep described by the input file
//! rhpl --sample               print a ready-to-edit sample HPL.dat
//! rhpl ... --split-frac 0.5   split-update fraction (0 = look-ahead only)
//! rhpl ... --threads 4        FACT threads per rank (SIII.A)
//! rhpl ... --seed 42          matrix generator seed
//! rhpl ... --trace-json BENCH_hpl.json   emit the per-iteration phase trace
//! ```

use std::process::ExitCode;

use rhpl_cli::{bench, dat, report, runner};

fn arg_value<T: std::str::FromStr>(args: &[String], key: &str) -> Option<T> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--sample") {
        print!("{}", dat::SAMPLE);
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: rhpl [HPL.dat] [--split-frac F] [--threads T] [--seed S] \
             [--trace-json PATH] [--sample]"
        );
        return ExitCode::SUCCESS;
    }
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && arg_is_positional(&args, a))
        .cloned()
        .unwrap_or_else(|| "HPL.dat".to_string());
    let split_frac: f64 = arg_value(&args, "--split-frac").unwrap_or(0.5);
    let threads: usize = arg_value(&args, "--threads").unwrap_or(1);
    let seed: u64 = arg_value(&args, "--seed").unwrap_or(42);
    let trace_json: Option<String> = arg_value(&args, "--trace-json");

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("rhpl: cannot read {path}: {e}");
            eprintln!("hint: `rhpl --sample > HPL.dat` writes a starting point");
            return ExitCode::FAILURE;
        }
    };
    let spec = match dat::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rhpl: {e}");
            return ExitCode::FAILURE;
        }
    };

    let combos = runner::expand(&spec, seed, split_frac, threads);
    let max_ranks = combos.iter().map(|(c, _)| c.ranks()).max().unwrap_or(1);
    print!("{}", report::banner(max_ranks));
    print!("{}", report::table_header());
    let mut failed = 0usize;
    let total = combos.len();
    let mut records = Vec::with_capacity(total);
    for (mut cfg, depth) in combos {
        if trace_json.is_some() {
            cfg.trace = hpl_trace::TraceOpts::on();
        }
        let rec = runner::run_one_traced(&cfg, depth, spec.threshold);
        print!("{}", report::format_record(&rec));
        if !rec.passed {
            failed += 1;
        }
        records.push(rec);
    }
    print!("{}", report::footer(total, failed));
    if let Some(path) = &trace_json {
        if let Err(e) = bench::write_bench_json(&records, path) {
            eprintln!("rhpl: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("rhpl: wrote phase trace to {path}");
    }
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// A positional arg is one not consumed as a `--key value` pair.
fn arg_is_positional(args: &[String], a: &str) -> bool {
    match args.iter().position(|x| x == a) {
        Some(0) => true,
        Some(i) => !args[i - 1].starts_with("--"),
        None => false,
    }
}
