//! # rhpl-cli
//!
//! The `rhpl` benchmark binary: reads a classic `HPL.dat` (the same input
//! format Netlib HPL and rocHPL use), runs the described sweep on
//! thread-backed ranks, and prints results in the classic HPL layout —
//! so existing HPL tooling and muscle memory work against this
//! reproduction.
//!
//! * [`dat`] — the `HPL.dat` parser.
//! * [`runner`] — sweep expansion and execution.
//! * [`report`] — classic output formatting.
//! * [`bench`] — the `BENCH_hpl.json` phase-trace emitter (`--trace-json`).
//! * [`faults`] — the `--fault` soak mode with its `HPLOK`/`HPLERROR`
//!   stdout protocol.
//! * [`recover`] — the checkpoint/restart supervisor (`--ckpt-every`),
//!   which survives injected rank deaths mid-run.
//! * [`launch`] — `rhpl launch`: one OS process per rank over a real
//!   transport (tcp/shm), with heartbeat failure detection and gang restart
//!   from checkpoints when a rank is killed.

// Lint policy: indexed loops are used deliberately where they mirror the
// reference BLAS/HPL loop structure, and several kernels take the full
// argument list their BLAS counterparts do.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::too_many_arguments)]

pub mod bench;
pub mod dat;
pub mod faults;
pub mod launch;
pub mod recover;
pub mod report;
pub mod runner;

pub use dat::{parse, JobSpec, ParseError, SAMPLE};
pub use runner::{
    encode_tv, expand, run_one, run_one_element, run_one_mxp, run_one_traced, MxpStats, RunRecord,
};
