//! The in-run recovery supervisor (`--fault ... --ckpt-every K`).
//!
//! Where plain fault-soak mode ([`crate::faults`]) reports a rank death and
//! stops, the supervisor *survives* it: the job runs with coordinated
//! checkpointing armed, and when an attempt ends in a structured failure the
//! poisoned universe is torn down, every rank is restored from the last
//! complete checkpoint generation, and the factorization resumes mid-stream.
//! The fault injector is shared across attempts, so a one-shot death does
//! not re-fire on the replacement ranks — exactly the component-replacement
//! model of a real scheduler — while sticky faults keep firing and exhaust
//! the bounded attempt budget.
//!
//! The protocol block extends the fault-soak one with a deterministic
//! `RECOVERY` line per restart:
//!
//! ```text
//! FAULTRUN n=64 nb=8 grid=2x2 seed=42 ckpt_every=2
//! RECOVERY attempt=1 kind=rank_failed restored_gen=4
//! HPLOK residual=3.241587e-2
//! FAULTLOG rank=1 events=send#31:death
//! ```
//!
//! Every field is derived from the injected plan (never wall-clock), so the
//! `cargo xtask faults --recovery` soak can assert byte-identical stdout
//! across repeated runs.

use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

use hpl_ckpt::CkptStore;
use hpl_comm::Universe;
use hpl_faults::{FaultPlan, Injector};
use rhpl_core::{run_hpl, CkptOpts, HplConfig};

use crate::faults::{judge, write_faultlog, FaultOutcome};

/// Total attempt budget: the initial run plus up to two restarts. Sticky
/// faults that out-live the budget surface as the final attempt's error.
pub const MAX_ATTEMPTS: usize = 3;

/// Runs one configuration under `plan` with checkpoint/restart supervision
/// and formats its protocol block. `every` is the checkpoint cadence in
/// panel iterations; `dir` selects the on-disk store (wiped first, so the
/// soak is reproducible) over the default in-memory one.
pub fn run_one_supervised(
    cfg: &HplConfig,
    plan: FaultPlan,
    threshold: f64,
    every: usize,
    dir: Option<&Path>,
) -> FaultOutcome {
    let nranks = cfg.ranks();
    let store = match dir {
        Some(d) => match CkptStore::disk_fresh(d, nranks) {
            Ok(s) => s,
            Err(e) => {
                let line = format!("HPLBAD ckpt store: {e}");
                return FaultOutcome {
                    verdict: Err(line.clone()),
                    block: format!("{line}\n"),
                    recoveries: 0,
                };
            }
        },
        None => CkptStore::mem(nranks),
    };
    let mut run_cfg = cfg.clone();
    run_cfg.ckpt = CkptOpts {
        every,
        store: Some(Arc::clone(&store)),
        resume: true,
    };

    let injector = Injector::new(plan, nranks);
    let mut block = String::new();
    let _ = writeln!(
        block,
        "FAULTRUN n={} nb={} grid={}x{} seed={} ckpt_every={every}",
        cfg.n, cfg.nb, cfg.p, cfg.q, cfg.seed
    );

    let mut repairs = vec![0u64; nranks];
    let mut recoveries = 0u64;
    let mut verdict: Result<f64, String> = Err("HPLBAD supervisor ran no attempts".to_string());
    for attempt in 1..=MAX_ATTEMPTS {
        let run = Universe::run_with_injector(nranks, Arc::clone(&injector), |comm| {
            run_hpl(comm, &run_cfg)
        });
        for (acc, r) in repairs.iter_mut().zip(&run.abft_repairs) {
            *acc += r;
        }
        verdict = judge(&run_cfg, &run, threshold);
        match &verdict {
            Ok(residual) => {
                let _ = writeln!(block, "HPLOK residual={residual:.6e}");
                break;
            }
            // A structured failure with attempts left: restore and go again.
            Err(line) if line.starts_with("HPLERROR") && attempt < MAX_ATTEMPTS => {
                recoveries += 1;
                let kind = line
                    .split_whitespace()
                    .find_map(|t| t.strip_prefix("kind="))
                    .unwrap_or("unknown");
                let gen = store
                    .latest_complete()
                    .map_or_else(|| "-".to_string(), |g| g.to_string());
                let _ = writeln!(
                    block,
                    "RECOVERY attempt={attempt} kind={kind} restored_gen={gen}"
                );
            }
            // HPLBAD (wrong answer) is not recoverable-by-restart; the final
            // attempt's error also lands here.
            Err(line) => {
                let _ = writeln!(block, "{line}");
                break;
            }
        }
    }
    write_faultlog(&mut block, &injector, &repairs);
    FaultOutcome {
        verdict,
        block,
        recoveries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_faults::Site;

    fn cfg_2x2() -> HplConfig {
        let mut cfg = HplConfig::new(64, 8, 2, 2);
        cfg.seed = 42;
        cfg
    }

    /// Places a one-shot death at `frac` of the victim's send traffic, as
    /// counted on a fault-free rehearsal of the same configuration.
    fn death_plan(cfg: &HplConfig, victim: usize, frac: f64) -> FaultPlan {
        let probe = Universe::run_with_faults(cfg.ranks(), FaultPlan::new(0), |comm| {
            run_hpl(comm, cfg).expect("nonsingular").x
        });
        let sends = probe.injector.site_count(victim, Site::Send);
        let nth = ((sends as f64 * frac) as u64).max(1);
        FaultPlan::parse(1, &[format!("death@{victim}:send:{nth}")]).expect("spec")
    }

    #[test]
    fn one_shot_death_is_survived() {
        let cfg = cfg_2x2();
        let out = run_one_supervised(&cfg, death_plan(&cfg, 1, 0.5), 16.0, 2, None);
        assert!(out.ok(), "{}", out.block);
        assert_eq!(out.recoveries, 1, "{}", out.block);
        assert!(
            out.block
                .contains("RECOVERY attempt=1 kind=rank_failed restored_gen="),
            "{}",
            out.block
        );
        assert!(out.block.contains("HPLOK residual="), "{}", out.block);
    }

    #[test]
    fn supervised_blocks_are_byte_identical() {
        let cfg = cfg_2x2();
        let a = run_one_supervised(&cfg, death_plan(&cfg, 1, 0.5), 16.0, 2, None);
        let b = run_one_supervised(&cfg, death_plan(&cfg, 1, 0.5), 16.0, 2, None);
        assert!(a.ok(), "{}", a.block);
        if hpl_comm::active_transport_name() == "inproc" {
            assert_eq!(a.block, b.block);
        } else {
            // Byte-moving transports propagate the injected death with
            // *physical* latency (socket hop, file-poll interval), so how
            // many checkpoint generations the survivors complete before
            // unwinding — and thus `restored_gen` — is honestly
            // nondeterministic. The protocol shape and outcome still are.
            let gens = |block: &str| block.replace(|c: char| c.is_ascii_digit(), "#");
            assert_eq!(gens(&a.block), gens(&b.block));
            assert!(a.block.contains("RECOVERY attempt=1"), "{}", a.block);
        }
    }

    #[test]
    fn sticky_death_exhausts_the_attempt_budget() {
        let cfg = cfg_2x2();
        let plan = FaultPlan::parse(1, &["death@1:send:4:sticky".to_string()]).expect("spec");
        let out = run_one_supervised(&cfg, plan, 16.0, 2, None);
        assert!(!out.ok());
        assert!(out.structured_error(), "{}", out.block);
        assert_eq!(out.recoveries as usize, MAX_ATTEMPTS - 1, "{}", out.block);
    }

    #[test]
    fn disk_store_survives_a_death_too() {
        let dir = std::env::temp_dir().join(format!("rhpl-recover-test-{}", std::process::id()));
        let cfg = cfg_2x2();
        let out = run_one_supervised(&cfg, death_plan(&cfg, 0, 0.5), 16.0, 2, Some(&dir));
        assert!(out.ok(), "{}", out.block);
        assert_eq!(out.recoveries, 1, "{}", out.block);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
