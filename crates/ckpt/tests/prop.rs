//! Property coverage for the snapshot codec: arbitrary grid shapes and
//! mid-panel iteration counts round-trip bitwise, and corruption anywhere
//! in the stream is detected.

use hpl_ckpt::{decode, encode, CkptStore, ConfigId, Snapshot};
use proptest::prelude::*;

/// Wide (but overflow-safe) `u64` source for seeds and raw f64 bit patterns.
const WIDE: std::ops::RangeInclusive<u64> = 0..=(1u64 << 62);

/// An arbitrary snapshot: grid shape, boundary iteration and payload sizes
/// all vary; data values include negatives, zeros and huge magnitudes.
fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        (1u64..=512, 1u64..=64, 1u64..=4, 1u64..=4),
        (WIDE, 0u64..=2, 0u64..=64, 0u64..=15),
        (0usize..=40, 0usize..=12),
    )
        .prop_flat_map(|(shape, run, (mloc, nloc))| {
            let len = mloc * nloc;
            (
                Just(shape),
                Just(run),
                Just((mloc, nloc)),
                collection::vec(WIDE, len..=len),
                collection::vec(WIDE, 0..=96),
                collection::vec(WIDE, 0..=8),
            )
        })
        .prop_map(
            |(
                (n, nb, p, q),
                (seed, schedule, next_iter, rank),
                (mloc, nloc),
                bits,
                pivots,
                cursors,
            )| {
                Snapshot {
                    id: ConfigId {
                        n,
                        nb,
                        p,
                        q,
                        seed,
                        schedule,
                        frac_bits: if schedule == 2 { 0.5f64.to_bits() } else { 0 },
                    },
                    rank,
                    next_iter,
                    mloc: mloc as u64,
                    nloc: nloc as u64,
                    // Reinterpret raw bits so subnormals and signed zeros
                    // appear; NaN is unreachable in this bit range.
                    data: bits.into_iter().map(f64::from_bits).collect(),
                    pivots,
                    cursors,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_round_trips(snap in arb_snapshot()) {
        let bytes = encode(&snap);
        let back = decode(&bytes).expect("well-formed snapshot must decode");
        prop_assert_eq!(&back, &snap);
        // Bitwise: signed zeros and subnormals survive exactly.
        for (a, b) in back.data.iter().zip(snap.data.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn corruption_is_detected(snap in arb_snapshot(), pos in 0usize..=(1 << 20), bit in 0u8..=7) {
        let mut bytes = encode(&snap);
        let pos = pos % bytes.len();
        bytes[pos] ^= 1u8 << bit;
        prop_assert!(decode(&bytes).is_err(), "flipped byte {} accepted", pos);
    }

    #[test]
    fn truncation_is_detected(snap in arb_snapshot(), cut in 0usize..=(1 << 20)) {
        let bytes = encode(&snap);
        let cut = cut % bytes.len();
        prop_assert!(decode(&bytes[..cut]).is_err(), "cut at {} accepted", cut);
    }

    #[test]
    fn store_round_trip_recovers_the_deposit(snap in arb_snapshot(), nranks in 1usize..=4) {
        let store = CkptStore::mem(nranks);
        let rank = (snap.rank as usize) % nranks;
        let gen = snap.next_iter;
        for r in 0..nranks {
            let mut s = snap.clone();
            s.rank = r as u64;
            store.deposit(gen, r, encode(&s)).expect("deposit");
        }
        prop_assert_eq!(store.latest_complete(), Some(gen));
        let back = decode(&store.load(gen, rank).expect("load")).expect("decode");
        prop_assert_eq!(back.rank, rank as u64);
        prop_assert_eq!(&back.data, &snap.data);
        prop_assert_eq!(&back.pivots, &snap.pivots);
    }
}
