//! Double-buffered checkpoint stores.
//!
//! A [`CkptStore`] collects one encoded deposit per rank per checkpoint
//! *generation* (the boundary iteration number). A generation is only
//! **complete** — and therefore restorable — once all `nranks` deposits
//! have landed; [`CkptStore::latest_complete`] never returns a generation a
//! crash interrupted halfway. The two most recent complete generations are
//! retained (double buffering) and everything older is pruned.
//!
//! Two backends share the same semantics:
//!
//! * **Memory** — deposits live in a mutex-guarded map; this is the default
//!   for in-process supervisor recovery.
//! * **Disk** (`--ckpt-dir`) — each deposit is written to
//!   `ckpt-g{gen}-r{rank}.tmp` and promoted with an atomic rename to
//!   `.bin`; a `ckpt-g{gen}.ok` marker (also rename-promoted) records
//!   completeness, so readers and crashes can never observe a torn file as
//!   the latest good snapshot.

use crate::CkptError;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// How many complete generations to retain.
const KEEP: usize = 2;

/// A shared, rank-coordinated checkpoint store (see module docs).
pub struct CkptStore {
    nranks: usize,
    backend: Backend,
}

enum Backend {
    Mem(Mutex<MemState>),
    Disk(DiskState),
}

#[derive(Default)]
struct MemState {
    /// Per-generation deposit slots, one per rank.
    gens: BTreeMap<u64, Vec<Option<Arc<Vec<u8>>>>>,
    /// Complete generations, ascending.
    complete: Vec<u64>,
}

struct DiskState {
    dir: PathBuf,
    /// Serializes the complete-marker check-and-write and pruning.
    lock: Mutex<()>,
}

impl std::fmt::Debug for CkptStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.backend {
            Backend::Mem(_) => write!(f, "CkptStore::mem(nranks={})", self.nranks),
            Backend::Disk(d) => write!(
                f,
                "CkptStore::disk({}, nranks={})",
                d.dir.display(),
                self.nranks
            ),
        }
    }
}

impl CkptStore {
    /// Creates an in-memory store for `nranks` ranks.
    pub fn mem(nranks: usize) -> Arc<Self> {
        Arc::new(CkptStore {
            nranks,
            backend: Backend::Mem(Mutex::new(MemState::default())),
        })
    }

    /// Opens an on-disk store under `dir` (created if absent). Existing
    /// checkpoint files are kept: a fresh process can resume from what a
    /// previous one deposited.
    pub fn disk(dir: &Path, nranks: usize) -> Result<Arc<Self>, CkptError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| CkptError::Io(format!("{}: {e}", dir.display())))?;
        Ok(Arc::new(CkptStore {
            nranks,
            backend: Backend::Disk(DiskState {
                dir: dir.to_path_buf(),
                lock: Mutex::new(()),
            }),
        }))
    }

    /// Opens an on-disk store under `dir`, first removing any checkpoint
    /// files a previous run left there. Only files matching this store's
    /// own `ckpt-g*` naming scheme are touched. Use this when the run must
    /// be reproducible from scratch (the CLI fault-soak gate does).
    pub fn disk_fresh(dir: &Path, nranks: usize) -> Result<Arc<Self>, CkptError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| CkptError::Io(format!("{}: {e}", dir.display())))?;
        let entries =
            std::fs::read_dir(dir).map_err(|e| CkptError::Io(format!("{}: {e}", dir.display())))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("ckpt-g") {
                std::fs::remove_file(entry.path())
                    .map_err(|e| CkptError::Io(format!("{name}: {e}")))?;
            }
        }
        Self::disk(dir, nranks)
    }

    /// Number of ranks that must deposit before a generation is complete.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Deposits `rank`'s encoded snapshot for generation `gen`. When the
    /// deposit completes the generation, older generations beyond the
    /// retained pair are pruned. Re-depositing the same `(gen, rank)` is
    /// idempotent (a resumed run re-deposits at its restart boundary).
    pub fn deposit(&self, gen: u64, rank: usize, bytes: Vec<u8>) -> Result<(), CkptError> {
        match &self.backend {
            Backend::Mem(m) => {
                let mut st = m.lock();
                let slots = st
                    .gens
                    .entry(gen)
                    .or_insert_with(|| vec![None; self.nranks]);
                if rank >= slots.len() {
                    return Err(CkptError::Missing { gen, rank });
                }
                slots[rank] = Some(Arc::new(bytes));
                if slots.iter().all(Option::is_some) && !st.complete.contains(&gen) {
                    st.complete.push(gen);
                    st.complete.sort_unstable();
                    if st.complete.len() > KEEP {
                        let cutoff = st.complete[st.complete.len() - KEEP];
                        st.complete.retain(|&g| g >= cutoff);
                        st.gens.retain(|&g, _| g >= cutoff);
                    }
                }
                Ok(())
            }
            Backend::Disk(d) => {
                let tmp = d.dir.join(format!("ckpt-g{gen:08}-r{rank:04}.tmp"));
                let fin = d.dir.join(deposit_name(gen, rank));
                std::fs::write(&tmp, &bytes)
                    .map_err(|e| CkptError::Io(format!("{}: {e}", tmp.display())))?;
                std::fs::rename(&tmp, &fin)
                    .map_err(|e| CkptError::Io(format!("{}: {e}", fin.display())))?;
                let _g = d.lock.lock();
                let all = (0..self.nranks).all(|r| d.dir.join(deposit_name(gen, r)).exists());
                if all {
                    let mark_tmp = d.dir.join(format!("ckpt-g{gen:08}.ok.tmp"));
                    let mark = d.dir.join(marker_name(gen));
                    if !mark.exists() {
                        std::fs::write(&mark_tmp, b"ok\n")
                            .map_err(|e| CkptError::Io(format!("{}: {e}", mark_tmp.display())))?;
                        std::fs::rename(&mark_tmp, &mark)
                            .map_err(|e| CkptError::Io(format!("{}: {e}", mark.display())))?;
                    }
                    self.prune_disk(d)?;
                }
                Ok(())
            }
        }
    }

    /// The newest generation for which every rank has deposited, if any.
    pub fn latest_complete(&self) -> Option<u64> {
        match &self.backend {
            Backend::Mem(m) => m.lock().complete.last().copied(),
            Backend::Disk(d) => disk_complete_gens(&d.dir).last().copied(),
        }
    }

    /// Loads `rank`'s deposit for generation `gen`.
    pub fn load(&self, gen: u64, rank: usize) -> Result<Vec<u8>, CkptError> {
        match &self.backend {
            Backend::Mem(m) => {
                let st = m.lock();
                st.gens
                    .get(&gen)
                    .and_then(|slots| slots.get(rank))
                    .and_then(|s| s.as_ref())
                    .map(|b| b.as_ref().clone())
                    .ok_or(CkptError::Missing { gen, rank })
            }
            Backend::Disk(d) => {
                let path = d.dir.join(deposit_name(gen, rank));
                std::fs::read(&path).map_err(|_| CkptError::Missing { gen, rank })
            }
        }
    }

    /// Removes deposits and markers of generations older than the retained
    /// pair of complete ones. Failures removing stale files are ignored:
    /// they cost disk space, never correctness.
    fn prune_disk(&self, d: &DiskState) -> Result<(), CkptError> {
        let complete = disk_complete_gens(&d.dir);
        if complete.len() <= KEEP {
            return Ok(());
        }
        let cutoff = complete[complete.len() - KEEP];
        let entries = std::fs::read_dir(&d.dir)
            .map_err(|e| CkptError::Io(format!("{}: {e}", d.dir.display())))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(gen) = parse_gen(&name) {
                if gen < cutoff {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        Ok(())
    }
}

fn deposit_name(gen: u64, rank: usize) -> String {
    format!("ckpt-g{gen:08}-r{rank:04}.bin")
}

fn marker_name(gen: u64) -> String {
    format!("ckpt-g{gen:08}.ok")
}

/// Generation number of any `ckpt-g{gen}...` file name, or `None`.
fn parse_gen(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("ckpt-g")?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Ascending list of complete (marker-bearing) generations under `dir`.
fn disk_complete_gens(dir: &Path) -> Vec<u64> {
    let mut gens = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return gens;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.ends_with(".ok") {
            if let Some(g) = parse_gen(&name) {
                gens.push(g);
            }
        }
    }
    gens.sort_unstable();
    gens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_generation_completes_only_when_all_ranks_deposit() {
        let store = CkptStore::mem(2);
        store.deposit(2, 0, vec![1]).unwrap();
        assert_eq!(store.latest_complete(), None);
        store.deposit(2, 1, vec![2]).unwrap();
        assert_eq!(store.latest_complete(), Some(2));
        assert_eq!(store.load(2, 1).unwrap(), vec![2]);
        assert!(store.load(2, 5).is_err());
        assert!(store.load(4, 0).is_err());
    }

    #[test]
    fn mem_keeps_the_last_two_complete_generations() {
        let store = CkptStore::mem(1);
        for gen in [2u64, 4, 6, 8] {
            store.deposit(gen, 0, vec![gen as u8]).unwrap();
        }
        assert_eq!(store.latest_complete(), Some(8));
        assert!(store.load(2, 0).is_err(), "gen 2 should be pruned");
        assert!(store.load(4, 0).is_err(), "gen 4 should be pruned");
        assert_eq!(store.load(6, 0).unwrap(), vec![6]);
        assert_eq!(store.load(8, 0).unwrap(), vec![8]);
    }

    #[test]
    fn mem_redeposit_is_idempotent() {
        let store = CkptStore::mem(1);
        store.deposit(2, 0, vec![7]).unwrap();
        store.deposit(2, 0, vec![7]).unwrap();
        assert_eq!(store.latest_complete(), Some(2));
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hpl-ckpt-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_round_trips_and_prunes() {
        let dir = temp_dir("roundtrip");
        let store = CkptStore::disk_fresh(&dir, 2).unwrap();
        assert_eq!(store.latest_complete(), None);
        for gen in [2u64, 4, 6, 8] {
            store.deposit(gen, 0, vec![gen as u8, 0]).unwrap();
            assert_eq!(
                store.latest_complete(),
                if gen == 2 { None } else { Some(gen - 2) },
                "half-deposited generation {gen} must not be visible"
            );
            store.deposit(gen, 1, vec![gen as u8, 1]).unwrap();
            assert_eq!(store.latest_complete(), Some(gen));
        }
        assert_eq!(store.load(8, 1).unwrap(), vec![8, 1]);
        assert_eq!(store.load(6, 0).unwrap(), vec![6, 0]);
        assert!(store.load(2, 0).is_err(), "gen 2 should be pruned");
        assert!(!dir.join(deposit_name(4, 0)).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_fresh_wipes_previous_run() {
        let dir = temp_dir("fresh");
        {
            let store = CkptStore::disk_fresh(&dir, 1).unwrap();
            store.deposit(2, 0, vec![9]).unwrap();
            assert_eq!(store.latest_complete(), Some(2));
        }
        // Re-opening without wiping resumes; wiping forgets.
        let kept = CkptStore::disk(&dir, 1).unwrap();
        assert_eq!(kept.latest_complete(), Some(2));
        let fresh = CkptStore::disk_fresh(&dir, 1).unwrap();
        assert_eq!(fresh.latest_complete(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_gen_reads_the_generation() {
        assert_eq!(parse_gen("ckpt-g00000004-r0001.bin"), Some(4));
        assert_eq!(parse_gen("ckpt-g00000012.ok"), Some(12));
        assert_eq!(parse_gen("other.txt"), None);
    }
}
