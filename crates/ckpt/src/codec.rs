//! Self-describing binary snapshot codec.
//!
//! Layout (all integers little-endian `u64` unless noted):
//!
//! ```text
//! magic   u32  = 0x52434B50 ("RCKP")
//! version u32  = 1
//! id      7 x u64  (n, nb, p, q, seed, schedule, frac_bits)
//! rank, next_iter, mloc, nloc   4 x u64
//! data    u64 count, then count x f64 (IEEE-754 bit patterns)
//! pivots  u64 count, then count x u64
//! cursors u64 count, then count x u64
//! trailer u64  FNV-1a over every preceding byte
//! ```
//!
//! The trailer makes a torn or bit-flipped snapshot detectable on restore;
//! together with the store's atomic-rename deposits it guarantees a crash
//! mid-write never yields a silently corrupt "last good" checkpoint.

use crate::{CkptError, ConfigId, Snapshot};

const MAGIC: u32 = 0x5243_4B50; // "RCKP"
const VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice (same constants as the trace `seq_hash`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serializes a snapshot to its checksummed wire form.
pub fn encode(snap: &Snapshot) -> Vec<u8> {
    let words = 4 + 7 + snap.data.len() + snap.pivots.len() + snap.cursors.len() + 4;
    let mut out = Vec::with_capacity(8 + words * 8 + 8);
    put_u32(&mut out, MAGIC);
    put_u32(&mut out, VERSION);
    for v in [
        snap.id.n,
        snap.id.nb,
        snap.id.p,
        snap.id.q,
        snap.id.seed,
        snap.id.schedule,
        snap.id.frac_bits,
        snap.rank,
        snap.next_iter,
        snap.mloc,
        snap.nloc,
    ] {
        put_u64(&mut out, v);
    }
    put_u64(&mut out, snap.data.len() as u64);
    for &x in &snap.data {
        put_u64(&mut out, x.to_bits());
    }
    put_u64(&mut out, snap.pivots.len() as u64);
    for &p in &snap.pivots {
        put_u64(&mut out, p);
    }
    put_u64(&mut out, snap.cursors.len() as u64);
    for &c in &snap.cursors {
        put_u64(&mut out, c);
    }
    let sum = fnv1a(&out);
    put_u64(&mut out, sum);
    out
}

/// Cursor over the byte stream; every read is bounds-checked.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        let end = self.pos.checked_add(n).ok_or(CkptError::Truncated {
            need: usize::MAX,
            have: self.bytes.len(),
        })?;
        if end > self.bytes.len() {
            return Err(CkptError::Truncated {
                need: end,
                have: self.bytes.len(),
            });
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CkptError> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, CkptError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a count-prefixed `u64` vector. The count is sanity-bounded by
    /// the bytes remaining so a corrupt length cannot trigger a huge
    /// allocation before the checksum is even checked.
    fn u64_vec(&mut self) -> Result<Vec<u64>, CkptError> {
        let count = self.u64()? as usize;
        let need = count.checked_mul(8).ok_or(CkptError::Truncated {
            need: usize::MAX,
            have: self.bytes.len(),
        })?;
        if self.bytes.len() - self.pos < need {
            return Err(CkptError::Truncated {
                need: self.pos + need,
                have: self.bytes.len(),
            });
        }
        let mut v = Vec::with_capacity(count);
        for _ in 0..count {
            v.push(self.u64()?);
        }
        Ok(v)
    }
}

/// Deserializes and validates a snapshot: magic, version, field lengths and
/// the FNV-1a trailer must all check out.
pub fn decode(bytes: &[u8]) -> Result<Snapshot, CkptError> {
    if bytes.len() < 8 + 8 {
        return Err(CkptError::Truncated {
            need: 16,
            have: bytes.len(),
        });
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let mut tb = [0u8; 8];
    tb.copy_from_slice(trailer);
    let expected = u64::from_le_bytes(tb);
    let got = fnv1a(payload);
    if expected != got {
        return Err(CkptError::Checksum { expected, got });
    }

    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let magic = r.u32()?;
    if magic != MAGIC {
        return Err(CkptError::BadMagic(magic));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(CkptError::BadVersion(version));
    }
    let id = ConfigId {
        n: r.u64()?,
        nb: r.u64()?,
        p: r.u64()?,
        q: r.u64()?,
        seed: r.u64()?,
        schedule: r.u64()?,
        frac_bits: r.u64()?,
    };
    let rank = r.u64()?;
    let next_iter = r.u64()?;
    let mloc = r.u64()?;
    let nloc = r.u64()?;
    let data: Vec<f64> = r.u64_vec()?.into_iter().map(f64::from_bits).collect();
    let pivots = r.u64_vec()?;
    let cursors = r.u64_vec()?;
    if r.pos != payload.len() {
        return Err(CkptError::Truncated {
            need: r.pos,
            have: payload.len(),
        });
    }
    Ok(Snapshot {
        id,
        rank,
        next_iter,
        mloc,
        nloc,
        data,
        pivots,
        cursors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            id: ConfigId {
                n: 48,
                nb: 8,
                p: 1,
                q: 2,
                seed: 42,
                schedule: 2,
                frac_bits: 0.5f64.to_bits(),
            },
            rank: 1,
            next_iter: 4,
            mloc: 3,
            nloc: 2,
            data: vec![1.0, -2.5, 0.0, f64::MIN_POSITIVE, 1e300, -0.0],
            pivots: vec![5, 0, 17],
            cursors: vec![2, 9, 0],
        }
    }

    #[test]
    fn round_trips_bitwise() {
        let snap = sample();
        let bytes = encode(&snap);
        let back = decode(&bytes).expect("decode");
        assert_eq!(back, snap);
        // -0.0 must survive as -0.0, not 0.0.
        assert_eq!(back.data[5].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn any_flipped_byte_is_detected() {
        let bytes = encode(&sample());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(decode(&bad).is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode(&sample());
        for cut in [0, 7, 15, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode(&sample());
        bytes.extend_from_slice(&[0u8; 8]);
        assert!(decode(&bytes).is_err());
    }
}
