//! # hpl-ckpt
//!
//! Coordinated, checksummed checkpoint/restart for the LU pipeline.
//!
//! At a panel boundary every `--ckpt-every K` iterations, each rank encodes
//! its slice of factorization state — the local block-cyclic matrix (which
//! at a boundary fully determines the remainder of the run), the global
//! pivot history of the completed panels, the iteration counter, and the
//! fault-injection cursors — into a self-describing binary [`Snapshot`]
//! ([`codec`]) and deposits it into a shared [`CkptStore`] ([`store`]).
//!
//! The store is **double-buffered**: a checkpoint *generation* (one deposit
//! per rank) only becomes restorable once every rank has deposited, and the
//! last two complete generations are retained, so a crash mid-checkpoint
//! can never corrupt the last good snapshot. The on-disk backend writes
//! each deposit to a temporary file and promotes it with an atomic rename
//! for the same reason.
//!
//! Consistency protocol: the driver checkpoints at the *top* of a loop
//! iteration, when the trailing matrix is fully updated through the
//! previous panel and the current panel is not yet factored (look-ahead
//! schedules, which factor panel `k` one iteration early, substitute a
//! pre-factorization image of the panel columns so every schedule deposits
//! the same boundary state). Restoring generation `k` therefore lands every
//! rank exactly where an uninterrupted run stood when iteration `k` began,
//! and the deterministic pipeline replays identically from there.

pub mod codec;
pub mod store;

pub use codec::{decode, encode};
pub use store::CkptStore;

/// Identity of the run a snapshot belongs to. Restoring a snapshot into a
/// run with a different identity is a configuration error, caught by
/// [`Snapshot::validate_id`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct ConfigId {
    /// Global problem size `N`.
    pub n: u64,
    /// Panel width `NB`.
    pub nb: u64,
    /// Grid rows `P`.
    pub p: u64,
    /// Grid columns `Q`.
    pub q: u64,
    /// Matrix-generator seed.
    pub seed: u64,
    /// Schedule discriminant (0 = simple, 1 = look-ahead, 2 = split-update).
    pub schedule: u64,
    /// Bit pattern of the split-update fraction (0 for other schedules).
    pub frac_bits: u64,
}

/// One rank's checkpointed factorization state at a panel boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Identity of the run this snapshot belongs to.
    pub id: ConfigId,
    /// World rank that owns this slice.
    pub rank: u64,
    /// The iteration the restored run resumes at (the boundary iteration).
    pub next_iter: u64,
    /// Local row count of `data`.
    pub mloc: u64,
    /// Local column count of `data`.
    pub nloc: u64,
    /// Column-major local matrix slice (`mloc * nloc` values).
    pub data: Vec<f64>,
    /// Global pivot rows of the completed panels (columns `0..next_iter*nb`).
    pub pivots: Vec<u64>,
    /// Fault-injection cursors (per-site trigger counts) at the boundary.
    pub cursors: Vec<u64>,
}

impl Snapshot {
    /// Checks that this snapshot belongs to the run identified by `id`,
    /// returning the first mismatching field otherwise.
    pub fn validate_id(&self, id: &ConfigId) -> Result<(), CkptError> {
        let fields = [
            ("n", self.id.n, id.n),
            ("nb", self.id.nb, id.nb),
            ("p", self.id.p, id.p),
            ("q", self.id.q, id.q),
            ("seed", self.id.seed, id.seed),
            ("schedule", self.id.schedule, id.schedule),
            ("frac_bits", self.id.frac_bits, id.frac_bits),
        ];
        for (what, got, expected) in fields {
            if got != expected {
                return Err(CkptError::ConfigMismatch {
                    what,
                    expected,
                    got,
                });
            }
        }
        Ok(())
    }
}

/// Why a checkpoint operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CkptError {
    /// The byte stream ended before the advertised payload.
    Truncated {
        /// Bytes required by the header in scope.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The stream does not start with the `RCKP` magic.
    BadMagic(u32),
    /// The stream's format version is not understood.
    BadVersion(u32),
    /// The checksum trailer does not match the payload.
    Checksum {
        /// Checksum recorded in the trailer.
        expected: u64,
        /// Checksum recomputed over the payload.
        got: u64,
    },
    /// The snapshot belongs to a different run configuration.
    ConfigMismatch {
        /// Mismatching field name.
        what: &'static str,
        /// Value of the running configuration.
        expected: u64,
        /// Value recorded in the snapshot.
        got: u64,
    },
    /// No deposit exists for `(gen, rank)` in the store.
    Missing {
        /// Requested checkpoint generation.
        gen: u64,
        /// Requested rank.
        rank: usize,
    },
    /// A store I/O operation failed (on-disk backend).
    Io(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Truncated { need, have } => {
                write!(f, "snapshot truncated: need {need} bytes, have {have}")
            }
            CkptError::BadMagic(m) => write!(f, "bad snapshot magic {m:#010x}"),
            CkptError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            CkptError::Checksum { expected, got } => write!(
                f,
                "snapshot checksum mismatch: trailer {expected:#018x}, payload {got:#018x}"
            ),
            CkptError::ConfigMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "snapshot from a different run: {what} = {got}, expected {expected}"
            ),
            CkptError::Missing { gen, rank } => {
                write!(f, "no deposit for generation {gen} rank {rank}")
            }
            CkptError::Io(e) => write!(f, "checkpoint store I/O error: {e}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// True when iteration `it` is a checkpoint boundary under a `--ckpt-every`
/// cadence of `every` (0 disables checkpointing; iteration 0 is never a
/// boundary — there is nothing to save yet).
///
/// This is the *disabled-path guard* the driver evaluates every iteration;
/// it must stay branch-cheap (the trace_overhead harness pins its cost).
#[inline]
pub fn due(every: usize, it: usize) -> bool {
    every != 0 && it != 0 && it.is_multiple_of(every)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_matches_the_cadence() {
        assert!(!due(0, 0));
        assert!(!due(0, 4));
        assert!(!due(2, 0));
        assert!(!due(2, 1));
        assert!(due(2, 2));
        assert!(!due(2, 3));
        assert!(due(2, 4));
        assert!(due(1, 3));
    }

    #[test]
    fn validate_id_names_the_first_mismatch() {
        let id = ConfigId {
            n: 64,
            nb: 8,
            p: 2,
            q: 2,
            seed: 42,
            schedule: 2,
            frac_bits: 0.5f64.to_bits(),
        };
        let snap = Snapshot {
            id,
            rank: 0,
            next_iter: 2,
            mloc: 0,
            nloc: 0,
            data: vec![],
            pivots: vec![],
            cursors: vec![],
        };
        assert_eq!(snap.validate_id(&id), Ok(()));
        let other = ConfigId { seed: 43, ..id };
        assert_eq!(
            snap.validate_id(&other),
            Err(CkptError::ConfigMismatch {
                what: "seed",
                expected: 43,
                got: 42
            })
        );
    }
}
