//! Fuzz-style property coverage for the fault-plan spec grammar
//! (`kind[:param]@rank[:site][:nth][:sticky]`): well-formed specs must
//! round-trip through [`FaultPlan::parse`] field for field, and arbitrary
//! grammar-adjacent strings — wrong kinds, stray separators, overflowing
//! numbers, missing fields — must come back as `Err`, never a panic.

use hpl_faults::{FaultKind, FaultPlan, FaultSpec, Site};
use proptest::prelude::*;

/// Fragments the grammar is built from, plus near-miss mutations of each:
/// misspelled kinds, uppercase variants, stray separators, overflow-sized
/// numbers, and empty pieces.
fn arb_fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("delay"),
        Just("drop"),
        Just("bitflip"),
        Just("stall"),
        Just("death"),
        Just("slowworker"),
        Just("send"),
        Just("recv"),
        Just("region"),
        Just("sticky"),
        Just("DEATH"),
        Just("dealy"),
        Just("bit flip"),
        Just("sticky2"),
        Just(""),
        Just("0"),
        Just("1"),
        Just("17"),
        Just("-3"),
        Just("3.5"),
        Just("1e9"),
        Just("99999999999999999999999999"),
        Just("@"),
        Just(":"),
        Just("@@"),
        Just("::"),
    ]
    .prop_map(String::from)
}

/// A random concatenation of fragments and separators: sometimes a valid
/// spec, usually a near-miss.
fn arb_spec_string() -> impl Strategy<Value = String> {
    collection::vec((arb_fragment(), 0u8..=2), 1..=6).prop_map(|parts| {
        let mut s = String::new();
        for (frag, sep) in parts {
            s.push_str(&frag);
            match sep {
                0 => s.push(':'),
                1 => s.push('@'),
                _ => {}
            }
        }
        s
    })
}

/// A structurally valid spec, kept alongside its expected parse. The site
/// is drawn from the kind's `valid_at` set — the grammar rejects e.g. a
/// bit-flip at a receive, where no payload exists to corrupt.
fn arb_valid_spec() -> impl Strategy<Value = FaultSpec> {
    (
        0u64..=5,
        0u64..=1_000_000,
        0usize..=15,
        0u64..=1,
        0u64..=64,
        0u64..=1,
    )
        .prop_map(|(kind_ix, param, rank, site_pick, nth, sticky)| {
            let kind = match kind_ix {
                0 => FaultKind::Delay { micros: param },
                1 => FaultKind::Drop,
                2 => FaultKind::BitFlip {
                    bit: (param % 64) as u32,
                },
                3 => FaultKind::Stall { millis: param },
                4 => FaultKind::Death,
                _ => FaultKind::SlowWorker { millis: param },
            };
            // Death is the only kind valid at two sites; alternate on it.
            let site = if kind == FaultKind::Death && site_pick == 1 {
                Site::Recv
            } else {
                kind.default_site()
            };
            FaultSpec {
                kind,
                rank,
                site,
                nth,
                sticky: sticky == 1,
            }
        })
}

/// Renders a spec in the grammar (the inverse of `parse`).
fn render(spec: &FaultSpec) -> String {
    let kind = match spec.kind {
        FaultKind::Delay { micros } => format!("delay:{micros}"),
        FaultKind::Drop => "drop".to_string(),
        FaultKind::BitFlip { bit } => format!("bitflip:{bit}"),
        FaultKind::Stall { millis } => format!("stall:{millis}"),
        FaultKind::Death => "death".to_string(),
        FaultKind::SlowWorker { millis } => format!("slowworker:{millis}"),
    };
    let site = match spec.site {
        Site::Send => "send",
        Site::Recv => "recv",
        Site::Region => "region",
    };
    let sticky = if spec.sticky { ":sticky" } else { "" };
    format!("{kind}@{}:{site}:{}{sticky}", spec.rank, spec.nth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_spec_strings_never_panic(s in arb_spec_string()) {
        // The property is the absence of a panic; both outcomes are legal.
        match FaultPlan::parse(7, std::slice::from_ref(&s)) {
            Ok(plan) => prop_assert_eq!(plan.specs.len(), 1),
            Err(msg) => prop_assert!(!msg.is_empty(), "empty diagnostic for `{}`", s),
        }
    }

    #[test]
    fn malformed_specs_name_the_offender(s in arb_spec_string()) {
        if let Err(msg) = FaultPlan::parse(7, std::slice::from_ref(&s)) {
            prop_assert!(
                msg.contains(&s),
                "diagnostic `{}` does not quote the spec `{}`",
                msg, s
            );
        }
    }

    #[test]
    fn valid_specs_round_trip(spec in arb_valid_spec(), seed in 0u64..=1000) {
        let s = render(&spec);
        let parsed = FaultPlan::parse(seed, std::slice::from_ref(&s));
        prop_assert!(parsed.is_ok(), "valid spec `{}` rejected: {:?}", s, parsed.err());
        let plan = parsed.expect("checked above");
        prop_assert_eq!(plan.specs.len(), 1);
        prop_assert_eq!(plan.specs[0], spec);
    }

    #[test]
    fn multi_spec_plans_parse_positionally(a in arb_valid_spec(), b in arb_valid_spec()) {
        let specs = vec![render(&a), render(&b)];
        let plan = FaultPlan::parse(0, &specs).expect("two valid specs");
        prop_assert_eq!(plan.specs.len(), 2);
        prop_assert_eq!(plan.specs[0], a);
        prop_assert_eq!(plan.specs[1], b);
    }
}
