//! # hpl-faults
//!
//! Seeded, fully deterministic fault injection for the rhpl stack.
//!
//! The paper's headline runs live in the latency-bound regime where a single
//! stalled rank, lost broadcast message, or corrupted payload turns a
//! multi-PFLOPS run into a silent hang or a wrong answer. This crate is the
//! substrate for proving the reproduction degrades gracefully instead: a
//! [`FaultPlan`] describes *which* faults fire *where*, an [`Injector`] armed
//! on the comm fabric and the worker pool decides, at each choke point,
//! whether the next event is perturbed.
//!
//! Design constraints, mirroring the `hpl-trace` byte-attribution hook at
//! the same choke points:
//!
//! * **Zero-cost when disabled.** Every hook takes `&Option<Arc<Injector>>`;
//!   the unarmed path is a single `Option` discriminant check (asserted to
//!   stay in the same ~ns budget as a disabled trace-span guard by the
//!   `trace_overhead` harness and the `cargo xtask bench` gate).
//! * **Deterministic.** Events are matched by `(world rank, site, n-th
//!   event)` counters. Each rank performs its communication from one thread
//!   at a time (the rank thread, or pool thread 0 during FACT while the rank
//!   thread is parked), so per-rank program order — and therefore the event
//!   index a fault fires on — is identical across runs of the same seed.
//!   Worker-region events are matched by worker thread id, which is equally
//!   stable.
//! * **Observable.** Every injected fault is appended to a per-rank event
//!   log ([`Injector::events`]) so tests can assert byte-identical injected
//!   sequences across runs.
//!
//! The interpretation of each [`FaultKind`] (delay, drop-with-retransmit,
//! bit-flip, stall, death, slow worker) is owned by the hooked layer:
//! `hpl-comm` translates [`SendAction`]/[`RecvAction`] into sleeps, payload
//! corruption, retransmits or a [`RankDeath`] unwind; `hpl-threads` sleeps a
//! targeted worker at region entry.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// One kind of injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Hold a message for `micros` before delivering it (network jitter).
    Delay {
        /// Added latency in microseconds.
        micros: u64,
    },
    /// Lose a message in transit; the sender retransmits after a backoff
    /// (models a reliable transport's retry, visible only as latency).
    Drop,
    /// Flip one bit of an `f64` payload in transit (silent corruption; the
    /// ABFT-checksummed broadcast path must catch it).
    BitFlip {
        /// Bit index within the payload word, `0..64`.
        bit: u32,
    },
    /// The receiving rank goes unresponsive for `millis` before posting its
    /// receive (OS jitter, page fault storm, ...).
    Stall {
        /// Stall length in milliseconds.
        millis: u64,
    },
    /// The rank dies at the matched event: unwinds with a [`RankDeath`]
    /// payload, poisoning the fabric so peers fail promptly.
    Death,
    /// One worker thread of the rank's pool sleeps `millis` at region entry
    /// (a slow core; work-stealing/static schedules must absorb it).
    SlowWorker {
        /// Sleep per region entry in milliseconds.
        millis: u64,
    },
}

impl FaultKind {
    /// Stable lowercase name (spec-string syntax, logs).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Delay { .. } => "delay",
            FaultKind::Drop => "drop",
            FaultKind::BitFlip { .. } => "bitflip",
            FaultKind::Stall { .. } => "stall",
            FaultKind::Death => "death",
            FaultKind::SlowWorker { .. } => "slowworker",
        }
    }

    /// The site this kind fires at when the spec string does not name one.
    pub fn default_site(self) -> Site {
        match self {
            FaultKind::Delay { .. }
            | FaultKind::Drop
            | FaultKind::BitFlip { .. }
            | FaultKind::Death => Site::Send,
            FaultKind::Stall { .. } => Site::Recv,
            FaultKind::SlowWorker { .. } => Site::Region,
        }
    }

    /// Whether this kind may fire at `site` (e.g. a bit-flip only makes
    /// sense where a payload exists).
    pub fn valid_at(self, site: Site) -> bool {
        match site {
            Site::Send => matches!(
                self,
                FaultKind::Delay { .. }
                    | FaultKind::Drop
                    | FaultKind::BitFlip { .. }
                    | FaultKind::Death
            ),
            Site::Recv => matches!(self, FaultKind::Stall { .. } | FaultKind::Death),
            Site::Region => matches!(self, FaultKind::SlowWorker { .. }),
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Delay { micros } => write!(f, "delay:{micros}"),
            FaultKind::Drop => write!(f, "drop"),
            FaultKind::BitFlip { bit } => write!(f, "bitflip:{bit}"),
            FaultKind::Stall { millis } => write!(f, "stall:{millis}"),
            FaultKind::Death => write!(f, "death"),
            FaultKind::SlowWorker { millis } => write!(f, "slowworker:{millis}"),
        }
    }
}

/// Where in the stack a fault is injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Site {
    /// `Fabric::send` — the one choke point every outgoing payload crosses.
    Send,
    /// `Fabric::recv` — before the receive is posted.
    Recv,
    /// `hpl-threads::Pool` region entry on a worker thread.
    Region,
}

impl Site {
    /// Stable lowercase name (spec-string syntax, logs).
    pub fn name(self) -> &'static str {
        match self {
            Site::Send => "send",
            Site::Recv => "recv",
            Site::Region => "region",
        }
    }

    fn index(self) -> usize {
        match self {
            Site::Send => 0,
            Site::Recv => 1,
            Site::Region => 2,
        }
    }
}

/// One fault to inject: `kind` fires on world rank `rank` at `site`.
///
/// For [`Site::Send`] and [`Site::Recv`], `nth` is the 0-based index of the
/// matched event in that rank's program order (its `nth`-th send/recv). For
/// [`Site::Region`] it is the worker thread id inside the rank's pool. A
/// `sticky` spec fires on every matching event from `nth` on; a one-shot
/// spec fires exactly once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// What happens.
    pub kind: FaultKind,
    /// World rank the fault fires on.
    pub rank: usize,
    /// Choke point the fault fires at.
    pub site: Site,
    /// Event index (send/recv ordinal, or worker thread id for regions).
    pub nth: u64,
    /// Fire on every matching event from `nth` on instead of exactly once.
    pub sticky: bool,
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{}:{}:{}{}",
            self.kind,
            self.rank,
            self.site.name(),
            self.nth,
            if self.sticky { ":sticky" } else { "" }
        )
    }
}

/// A seeded set of [`FaultSpec`]s — the full description of one scenario.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Scenario seed; recorded for reproducibility and used by
    /// [`FaultPlan::from_seed`] to derive the specs themselves.
    pub seed: u64,
    /// The faults to inject.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            specs: Vec::new(),
        }
    }

    /// Builder-style: adds one spec.
    #[must_use]
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Parses spec strings of the form
    /// `kind[:param]@rank[:site][:nth][:sticky]`, e.g. `delay:200@0:send:5`,
    /// `bitflip:12@1:send:4:sticky`, `death@1`, `slowworker:20@1:region:2`.
    /// Omitted fields default to the kind's natural site, event 0, one-shot.
    pub fn parse(seed: u64, specs: &[String]) -> Result<Self, String> {
        let mut plan = FaultPlan::new(seed);
        for s in specs {
            plan.specs.push(parse_spec(s)?);
        }
        Ok(plan)
    }

    /// Derives a one-spec scenario deterministically from `seed` for a job
    /// of `nranks` ranks (property tests sweep seeds through this).
    pub fn from_seed(seed: u64, nranks: usize) -> Self {
        let mut s = SplitMix64(seed);
        let rank = (s.next() % nranks.max(1) as u64) as usize;
        let nth = s.next() % 12;
        let sticky = s.next().is_multiple_of(4);
        let kind = match s.next() % 6 {
            0 => FaultKind::Delay {
                micros: 50 + s.next() % 450,
            },
            1 => FaultKind::Drop,
            2 => FaultKind::BitFlip {
                bit: (s.next() % 64) as u32,
            },
            3 => FaultKind::Stall {
                millis: 1 + s.next() % 20,
            },
            4 => FaultKind::Death,
            _ => FaultKind::SlowWorker {
                millis: 1 + s.next() % 8,
            },
        };
        let site = kind.default_site();
        // Worker thread ids are small; keep the region target in range for
        // typical pools.
        let nth = if site == Site::Region { nth % 4 } else { nth };
        FaultPlan::new(seed).with(FaultSpec {
            kind,
            rank,
            site,
            nth,
            sticky,
        })
    }
}

fn parse_spec(s: &str) -> Result<FaultSpec, String> {
    let (kind_part, target_part) = match s.split_once('@') {
        Some((k, t)) => (k, Some(t)),
        None => (s, None),
    };
    let (name, param) = match kind_part.split_once(':') {
        Some((n, p)) => (n, Some(p)),
        None => (kind_part, None),
    };
    let num = |p: Option<&str>, what: &str| -> Result<u64, String> {
        p.ok_or_else(|| format!("fault spec `{s}`: {what} requires a numeric parameter"))?
            .parse()
            .map_err(|_| format!("fault spec `{s}`: bad {what} parameter"))
    };
    let kind = match name {
        "delay" => FaultKind::Delay {
            micros: num(param, "delay")?,
        },
        "drop" => FaultKind::Drop,
        "bitflip" => FaultKind::BitFlip {
            bit: (num(param, "bitflip")? % 64) as u32,
        },
        "stall" => FaultKind::Stall {
            millis: num(param, "stall")?,
        },
        "death" => FaultKind::Death,
        "slowworker" => FaultKind::SlowWorker {
            millis: num(param, "slowworker")?,
        },
        other => return Err(format!("fault spec `{s}`: unknown kind `{other}`")),
    };
    let mut spec = FaultSpec {
        kind,
        rank: 0,
        site: kind.default_site(),
        nth: 0,
        sticky: false,
    };
    if let Some(t) = target_part {
        let mut fields = t.split(':');
        spec.rank = fields
            .next()
            .filter(|f| !f.is_empty())
            .ok_or_else(|| format!("fault spec `{s}`: missing rank after `@`"))?
            .parse()
            .map_err(|_| format!("fault spec `{s}`: bad rank"))?;
        let mut rest: Vec<&str> = fields.collect();
        if rest.last() == Some(&"sticky") {
            spec.sticky = true;
            rest.pop();
        }
        let mut rest = rest.into_iter();
        if let Some(site) = rest.next() {
            spec.site = match site {
                "send" => Site::Send,
                "recv" => Site::Recv,
                "region" => Site::Region,
                other => return Err(format!("fault spec `{s}`: unknown site `{other}`")),
            };
        }
        if let Some(nth) = rest.next() {
            spec.nth = nth
                .parse()
                .map_err(|_| format!("fault spec `{s}`: bad event index"))?;
        }
        if rest.next().is_some() {
            return Err(format!("fault spec `{s}`: trailing fields"));
        }
    }
    if !spec.kind.valid_at(spec.site) {
        return Err(format!(
            "fault spec `{s}`: `{}` cannot fire at site `{}`",
            spec.kind.name(),
            spec.site.name()
        ));
    }
    Ok(spec)
}

/// What `Fabric::send` must do with the outgoing message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendAction {
    /// No fault: deliver normally.
    Deliver,
    /// Sleep `micros`, then deliver.
    Delay {
        /// Added latency in microseconds.
        micros: u64,
    },
    /// Treat the message as lost once, back off, retransmit, deliver.
    DropRetransmit,
    /// Flip `bit` of one payload word, then deliver.
    Corrupt {
        /// Bit index within the corrupted `f64` word.
        bit: u32,
    },
    /// The sending rank dies here (unwind with [`RankDeath`]).
    Death,
}

/// What `Fabric::recv` must do before posting the receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvAction {
    /// No fault: receive normally.
    Proceed,
    /// Sleep `millis`, then receive.
    Stall {
        /// Stall length in milliseconds.
        millis: u64,
    },
    /// The receiving rank dies here (unwind with [`RankDeath`]).
    Death,
}

/// Panic payload carried by an injected rank death. `hpl-comm` catches it at
/// the rank boundary, poisons the fabric with the identity, and re-raises.
#[derive(Clone, Debug)]
pub struct RankDeath {
    /// World rank that died.
    pub rank: usize,
    /// Human-readable description of where it died (site and, when tracing
    /// knows it, the LU pipeline phase).
    pub phase: String,
}

/// One injected fault occurrence, appended to the firing rank's event log.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    /// Site the fault fired at.
    pub site: Site,
    /// Event ordinal within `(rank, site)` program order (worker thread id
    /// for region events).
    pub seq: u64,
    /// `FaultKind` rendering of what was injected.
    pub action: String,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}:{}", self.site.name(), self.seq, self.action)
    }
}

thread_local! {
    /// World rank of the current thread, set by the job launcher (and by the
    /// pool when faults are armed) so injection counters key on world ranks
    /// even inside split sub-communicators.
    static WORLD_RANK: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Tags the current thread with its world rank (see [`world_rank`]).
pub fn set_world_rank(rank: usize) {
    WORLD_RANK.with(|c| c.set(rank));
}

/// The world rank the current thread acts for, if tagged.
pub fn world_rank() -> Option<usize> {
    let r = WORLD_RANK.with(Cell::get);
    (r != usize::MAX).then_some(r)
}

/// Armed fault state shared by every communicator of one job: per-rank,
/// per-site event counters; per-spec fired flags; per-rank event logs.
pub struct Injector {
    plan: FaultPlan,
    /// `counters[rank][site]` counts events in that rank's program order.
    counters: Vec<[AtomicU64; 3]>,
    /// One-shot state per spec (index-aligned with `plan.specs`).
    fired: Vec<AtomicBool>,
    /// Injected-event log per rank.
    events: Vec<Mutex<Vec<Event>>>,
}

impl Injector {
    /// Arms `plan` for a job of `nranks` ranks.
    pub fn new(plan: FaultPlan, nranks: usize) -> Arc<Self> {
        let fired = plan.specs.iter().map(|_| AtomicBool::new(false)).collect();
        Arc::new(Self {
            plan,
            counters: (0..nranks).map(|_| Default::default()).collect(),
            fired,
            events: (0..nranks).map(|_| Mutex::new(Vec::new())).collect(),
        })
    }

    /// The armed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of `rank`'s injected events, sorted for run-to-run
    /// comparison (send/recv events are already deterministic in program
    /// order; concurrent region events are ordered by the sort).
    pub fn events(&self, rank: usize) -> Vec<Event> {
        let mut v = self.events[rank].lock().clone();
        v.sort();
        v
    }

    /// [`Injector::events`] for every rank.
    pub fn all_events(&self) -> Vec<Vec<Event>> {
        (0..self.events.len()).map(|r| self.events(r)).collect()
    }

    /// How many times `rank`'s guard fired at `site` — i.e. the number of
    /// sends/recvs/regions that passed through the injection choke point.
    /// The overhead harness uses this to price the disabled-guard cost
    /// against real per-run traffic (world and split sub-fabrics alike).
    pub fn site_count(&self, rank: usize, site: Site) -> u64 {
        self.counters[rank][site.index()].load(Ordering::Relaxed)
    }

    /// Matches the `n`-th event of `(rank, site)` against the plan. Returns
    /// the kind to inject, if any, and logs it.
    fn fire(&self, rank: usize, site: Site, n: u64) -> Option<FaultKind> {
        for (i, spec) in self.plan.specs.iter().enumerate() {
            if spec.rank != rank || spec.site != site {
                continue;
            }
            let hit = if spec.sticky {
                n >= spec.nth
            } else {
                n == spec.nth && !self.fired[i].swap(true, Ordering::Relaxed)
            };
            if hit {
                self.events[rank].lock().push(Event {
                    site,
                    seq: n,
                    action: spec.kind.to_string(),
                });
                return Some(spec.kind);
            }
        }
        None
    }

    fn count(&self, rank: usize, site: Site) -> u64 {
        self.counters[rank][site.index()].fetch_add(1, Ordering::Relaxed)
    }

    fn send_action(&self) -> SendAction {
        let Some(rank) = world_rank().filter(|&r| r < self.counters.len()) else {
            return SendAction::Deliver;
        };
        let n = self.count(rank, Site::Send);
        match self.fire(rank, Site::Send, n) {
            Some(FaultKind::Delay { micros }) => SendAction::Delay { micros },
            Some(FaultKind::Drop) => SendAction::DropRetransmit,
            Some(FaultKind::BitFlip { bit }) => SendAction::Corrupt { bit },
            Some(FaultKind::Death) => SendAction::Death,
            _ => SendAction::Deliver,
        }
    }

    fn recv_action(&self) -> RecvAction {
        let Some(rank) = world_rank().filter(|&r| r < self.counters.len()) else {
            return RecvAction::Proceed;
        };
        let n = self.count(rank, Site::Recv);
        match self.fire(rank, Site::Recv, n) {
            Some(FaultKind::Stall { millis }) => RecvAction::Stall { millis },
            Some(FaultKind::Death) => RecvAction::Death,
            _ => RecvAction::Proceed,
        }
    }

    /// Slow-worker hook: milliseconds worker `tid` must sleep at region
    /// entry, if a matching fault fires on this thread's rank.
    pub fn region_sleep(&self, tid: usize) -> Option<u64> {
        let rank = world_rank().filter(|&r| r < self.counters.len())?;
        match self.fire(rank, Site::Region, tid as u64) {
            Some(FaultKind::SlowWorker { millis }) => Some(millis),
            _ => None,
        }
    }
}

/// Send-side hook, called by `Fabric::send` for every outgoing message. The
/// unarmed (`None`) path is one discriminant check.
#[inline]
pub fn on_send(inj: &Option<Arc<Injector>>) -> SendAction {
    match inj {
        None => SendAction::Deliver,
        Some(inj) => inj.send_action(),
    }
}

/// Recv-side hook, called by `Fabric::recv` before the receive is posted.
#[inline]
pub fn on_recv(inj: &Option<Arc<Injector>>) -> RecvAction {
    match inj {
        None => RecvAction::Proceed,
        Some(inj) => inj.recv_action(),
    }
}

/// Worker-region hook, called by the pool at region entry on worker `tid`.
/// Sleeps inline when a slow-worker fault matches.
#[inline]
pub fn on_region(inj: &Option<Arc<Injector>>, tid: usize) {
    if let Some(inj) = inj {
        if let Some(millis) = inj.region_sleep(tid) {
            std::thread::sleep(std::time::Duration::from_millis(millis));
        }
    }
}

/// SplitMix64: tiny deterministic PRNG for [`FaultPlan::from_seed`].
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(s: &str) -> FaultSpec {
        parse_spec(s).unwrap()
    }

    #[test]
    fn spec_strings_round_trip() {
        for s in [
            "delay:200@0:send:5",
            "drop@2:send:1",
            "bitflip:12@1:send:4:sticky",
            "stall:20@3:recv:7",
            "death@1:send:6",
            "slowworker:20@1:region:2",
        ] {
            assert_eq!(spec(s).to_string(), s, "round trip of `{s}`");
        }
    }

    #[test]
    fn spec_defaults() {
        let d = spec("death@1");
        assert_eq!(d.site, Site::Send);
        assert_eq!((d.nth, d.sticky), (0, false));
        let st = spec("stall:5@0");
        assert_eq!(st.site, Site::Recv);
        let sw = spec("slowworker:3@0");
        assert_eq!(sw.site, Site::Region);
    }

    #[test]
    fn bad_specs_rejected() {
        for s in [
            "explode@0",
            "delay@0",
            "bitflip:3@0:recv",
            "slowworker:3@0:send",
            "delay:5@x",
            "delay:5@0:send:1:2:3",
        ] {
            assert!(parse_spec(s).is_err(), "`{s}` should not parse");
        }
    }

    #[test]
    fn one_shot_fires_once_sticky_fires_forever() {
        let plan = FaultPlan::parse(0, &["delay:10@0:send:2".into()]).unwrap();
        let inj = Injector::new(plan, 2);
        set_world_rank(0);
        let acts: Vec<bool> = (0..6)
            .map(|_| inj.send_action() != SendAction::Deliver)
            .collect();
        assert_eq!(acts, [false, false, true, false, false, false]);

        let plan = FaultPlan::parse(0, &["drop@0:send:2:sticky".into()]).unwrap();
        let inj = Injector::new(plan, 1);
        let acts: Vec<bool> = (0..5)
            .map(|_| inj.send_action() != SendAction::Deliver)
            .collect();
        assert_eq!(acts, [false, false, true, true, true]);
    }

    #[test]
    fn counters_key_on_world_rank() {
        let plan = FaultPlan::parse(0, &["death@1:send:0".into()]).unwrap();
        let inj = Injector::new(plan, 2);
        set_world_rank(0);
        assert_eq!(inj.send_action(), SendAction::Deliver);
        set_world_rank(1);
        assert_eq!(inj.send_action(), SendAction::Death);
        set_world_rank(0);
    }

    #[test]
    fn untagged_threads_never_fault() {
        let plan = FaultPlan::parse(0, &["death@0:send:0:sticky".into()]).unwrap();
        let inj = Some(Injector::new(plan, 1));
        std::thread::spawn(move || {
            assert_eq!(on_send(&inj), SendAction::Deliver);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn events_log_injections() {
        let plan = FaultPlan::parse(7, &["stall:5@0:recv:1".into()]).unwrap();
        let inj = Injector::new(plan, 1);
        set_world_rank(0);
        let _ = inj.recv_action();
        let _ = inj.recv_action();
        let ev = inj.events(0);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].to_string(), "recv#1:stall:5");
    }

    #[test]
    fn from_seed_is_deterministic_and_valid() {
        for seed in 0..200 {
            let a = FaultPlan::from_seed(seed, 4);
            let b = FaultPlan::from_seed(seed, 4);
            assert_eq!(a, b);
            assert_eq!(a.specs.len(), 1);
            let s = a.specs[0];
            assert!(s.rank < 4);
            assert!(s.kind.valid_at(s.site), "seed {seed}: {s}");
        }
    }

    #[test]
    fn region_matches_thread_id() {
        let plan = FaultPlan::parse(0, &["slowworker:1@0:region:2".into()]).unwrap();
        let inj = Injector::new(plan, 1);
        set_world_rank(0);
        assert_eq!(inj.region_sleep(0), None);
        assert_eq!(inj.region_sleep(2), Some(1));
        assert_eq!(inj.region_sleep(2), None, "one-shot fires once");
    }
}
