//! DGEMM/DTRSM validated against a naive oracle across shapes, transposes,
//! alpha/beta values, and non-trivial leading dimensions.

use hpl_blas::mat::{MatMut, MatRef, Matrix};
use hpl_blas::{dgemm, dgemm_naive, dtrsm, Diag, Side, Trans, Uplo};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rand_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn dgemm_matches_naive_over_shapes() {
    let mut rng = StdRng::seed_from_u64(1);
    let shapes = [
        (1, 1, 1),
        (3, 5, 2),
        (8, 4, 8),
        (9, 5, 17),
        (17, 19, 23),
        (64, 64, 64),
        (65, 33, 70),
        (100, 1, 100),
        (1, 100, 50),
        (130, 130, 7),
        (300, 64, 512),
    ];
    for &(m, n, k) in &shapes {
        for &ta in &[Trans::No, Trans::Yes] {
            for &tb in &[Trans::No, Trans::Yes] {
                for &(alpha, beta) in &[(1.0, 0.0), (-1.0, 1.0), (0.5, -2.0), (0.0, 3.0)] {
                    let a = match ta {
                        Trans::No => rand_matrix(&mut rng, m, k),
                        Trans::Yes => rand_matrix(&mut rng, k, m),
                    };
                    let b = match tb {
                        Trans::No => rand_matrix(&mut rng, k, n),
                        Trans::Yes => rand_matrix(&mut rng, n, k),
                    };
                    let c0 = rand_matrix(&mut rng, m, n);
                    let mut c1 = c0.clone();
                    let mut c2 = c0.clone();
                    let mut v1 = c1.view_mut();
                    dgemm(ta, tb, alpha, a.view(), b.view(), beta, &mut v1);
                    let mut v2 = c2.view_mut();
                    dgemm_naive(ta, tb, alpha, a.view(), b.view(), beta, &mut v2);
                    let d = max_abs_diff(&c1, &c2);
                    assert!(
                        d < 1e-11 * (k as f64).max(1.0),
                        "m={m} n={n} k={k} ta={ta:?} tb={tb:?} alpha={alpha} beta={beta}: diff {d}"
                    );
                }
            }
        }
    }
}

#[test]
fn dgemm_respects_leading_dimension() {
    // C is a window in a larger buffer; elements outside the window must not
    // be touched.
    let mut rng = StdRng::seed_from_u64(2);
    let (m, n, k, lda) = (13, 9, 11, 20);
    let a = rand_matrix(&mut rng, m, k);
    let b = rand_matrix(&mut rng, k, n);
    let mut buf = vec![7.5f64; lda * n];
    let orig = buf.clone();
    {
        let mut c = MatMut::from_slice(&mut buf, m, n, lda);
        dgemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, &mut c);
    }
    // Check padding rows untouched.
    for j in 0..n {
        for i in m..lda {
            assert_eq!(
                buf[j * lda + i],
                orig[j * lda + i],
                "padding touched at ({i},{j})"
            );
        }
    }
    // And the window is correct.
    let mut cref = Matrix::zeros(m, n);
    let mut v = cref.view_mut();
    dgemm_naive(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, &mut v);
    let cw = MatRef::from_slice(&buf, m, n, lda);
    for j in 0..n {
        for i in 0..m {
            assert!((cw.get(i, j) - cref.get(i, j)).abs() < 1e-11);
        }
    }
}

fn make_triangular(rng: &mut StdRng, n: usize, uplo: Uplo, diag: Diag) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        let inside = match uplo {
            Uplo::Lower => i >= j,
            Uplo::Upper => i <= j,
        };
        if i == j {
            match diag {
                // Storage holds garbage on the diagonal for Unit: the solver
                // must never read it.
                Diag::Unit => rng.gen_range(5.0..9.0),
                Diag::NonUnit => {
                    rng.gen_range(1.5..2.5) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 }
                }
            }
        } else if inside {
            rng.gen_range(-0.5..0.5)
        } else {
            0.0
        }
    })
}

/// Computes op(T) as a dense matrix honoring uplo/diag, for oracle checks.
fn dense_op_t(t: &Matrix, uplo: Uplo, trans: Trans, diag: Diag) -> Matrix {
    let n = t.rows();
    let mut d = Matrix::from_fn(n, n, |i, j| {
        let inside = match uplo {
            Uplo::Lower => i >= j,
            Uplo::Upper => i <= j,
        };
        if i == j {
            match diag {
                Diag::Unit => 1.0,
                Diag::NonUnit => t.get(i, j),
            }
        } else if inside {
            t.get(i, j)
        } else {
            0.0
        }
    });
    if matches!(trans, Trans::Yes) {
        d = Matrix::from_fn(n, n, |i, j| d.get(j, i));
    }
    d
}

#[test]
fn dtrsm_all_combinations() {
    let mut rng = StdRng::seed_from_u64(3);
    for &n in &[1usize, 2, 7, 33, 70] {
        for &nrhs in &[1usize, 5, 40] {
            for &side in &[Side::Left, Side::Right] {
                for &uplo in &[Uplo::Lower, Uplo::Upper] {
                    for &trans in &[Trans::No, Trans::Yes] {
                        for &diag in &[Diag::Unit, Diag::NonUnit] {
                            let t = make_triangular(&mut rng, n, uplo, diag);
                            let (brows, bcols) = match side {
                                Side::Left => (n, nrhs),
                                Side::Right => (nrhs, n),
                            };
                            let b0 = rand_matrix(&mut rng, brows, bcols);
                            let alpha = 1.5;
                            let mut x = b0.clone();
                            let mut xv = x.view_mut();
                            dtrsm(side, uplo, trans, diag, alpha, t.view(), &mut xv);
                            // Verify op(T)-product reproduces alpha*B.
                            let opt = dense_op_t(&t, uplo, trans, diag);
                            let mut prod = Matrix::zeros(brows, bcols);
                            let mut pv = prod.view_mut();
                            match side {
                                Side::Left => dgemm_naive(
                                    Trans::No,
                                    Trans::No,
                                    1.0,
                                    opt.view(),
                                    x.view(),
                                    0.0,
                                    &mut pv,
                                ),
                                Side::Right => dgemm_naive(
                                    Trans::No,
                                    Trans::No,
                                    1.0,
                                    x.view(),
                                    opt.view(),
                                    0.0,
                                    &mut pv,
                                ),
                            }
                            for (got, want) in prod.as_slice().iter().zip(b0.as_slice()) {
                                let want = alpha * want;
                                assert!(
                                    (got - want).abs() < 1e-9 * (n as f64).max(1.0),
                                    "n={n} nrhs={nrhs} side={side:?} uplo={uplo:?} trans={trans:?} diag={diag:?}: {got} vs {want}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn dtrsm_empty_rhs_is_noop() {
    let t = Matrix::identity(4);
    let mut b = Matrix::zeros(4, 0);
    let mut bv = b.view_mut();
    dtrsm(
        Side::Left,
        Uplo::Lower,
        Trans::No,
        Diag::NonUnit,
        2.0,
        t.view(),
        &mut bv,
    );
}
