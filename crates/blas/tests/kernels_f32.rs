//! f32 instantiations of the kernel-dispatch correctness and determinism
//! tests in `kernels.rs`: every microkernel against the naive oracle over
//! the same adversarial edge shapes, bitwise serial-vs-parallel
//! equivalence, and packed-A path equivalence — the guarantees HPL-MxP's
//! resident f32 factorization leans on.

use hpl_blas::mat::Matrix;
use hpl_blas::{
    dgemm_naive, dgemm_packed, dgemm_parallel_with, dgemm_with, Kernel, PackedA, Trans,
};
use hpl_threads::Pool;
use proptest::prelude::*;

/// Every kernel available on this machine (scalar always; simd when the
/// CPU has one).
fn all_kernels() -> Vec<Kernel> {
    [Kernel::scalar()]
        .into_iter()
        .chain(Kernel::simd())
        .collect()
}

fn filled(r: usize, c: usize, seed: usize) -> Matrix<f32> {
    Matrix::from_fn(r, c, |i, j| {
        ((i * 29 + j * 13 + seed * 7) % 41) as f32 * 0.0625 - 1.25
    })
}

/// The `kernels.rs` edge shapes, which straddle the f32 blocking
/// boundaries too: the f32 SIMD tile is wider in m (MR = 16 on x86_64),
/// so the shapes with m in 1..=15 exercise its row padding.
const EDGE_SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (3, 2, 1),
    (7, 5, 1),
    (8, 6, 16),
    (9, 7, 17),
    (5, 11, 3),
    (16, 12, 31),
    (33, 29, 30),
    (70, 50, 64),
    (13, 3, 300),
    (40, 9, 257),
];

/// Reassociation tolerance: |entries| <= 1.25 and k <= 300, so the
/// accumulated f32 rounding differences stay far below 1e-3 relative.
fn close(x: f32, y: f32) -> bool {
    (x - y).abs() <= 1e-3 * (1.0 + y.abs())
}

#[test]
fn every_kernel_matches_naive_on_edge_shapes_f32() {
    for kern in all_kernels() {
        for &(m, n, k) in EDGE_SHAPES {
            let a = filled(m, k, 1);
            let b = filled(k, n, 2);
            let c0 = filled(m, n, 3);
            let mut want = c0.clone();
            let mut wv = want.view_mut();
            dgemm_naive(
                Trans::No,
                Trans::No,
                -0.5f32,
                a.view(),
                b.view(),
                0.75,
                &mut wv,
            );
            let mut got = c0.clone();
            let mut gv = got.view_mut();
            dgemm_with(
                kern,
                Trans::No,
                Trans::No,
                -0.5f32,
                a.view(),
                b.view(),
                0.75,
                &mut gv,
            );
            for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
                assert!(
                    close(*x, *y),
                    "kernel {} m={m} n={n} k={k}: {x} vs {y}",
                    kern.name()
                );
            }
        }
    }
}

#[test]
fn every_kernel_is_bit_identical_to_naive_order_free_cases_f32() {
    // With k = 1 there is exactly one product per element, so even the
    // accumulation-order caveat vanishes: every kernel must be bit-equal
    // to the oracle.
    for kern in all_kernels() {
        for &(m, n) in &[(1usize, 1usize), (7, 5), (33, 29), (70, 50)] {
            let a = filled(m, 1, 4);
            let b = filled(1, n, 5);
            let c0 = filled(m, n, 6);
            let mut want = c0.clone();
            let mut wv = want.view_mut();
            dgemm_naive(
                Trans::No,
                Trans::No,
                1.0f32,
                a.view(),
                b.view(),
                1.0,
                &mut wv,
            );
            let mut got = c0.clone();
            let mut gv = got.view_mut();
            dgemm_with(
                kern,
                Trans::No,
                Trans::No,
                1.0f32,
                a.view(),
                b.view(),
                1.0,
                &mut gv,
            );
            assert_eq!(
                got.as_slice(),
                want.as_slice(),
                "kernel {} m={m} n={n} k=1",
                kern.name()
            );
        }
    }
}

#[test]
fn f32_serial_and_parallel_are_bit_identical_per_kernel() {
    // The determinism contract `--mxp` leans on across transports: under
    // any one kernel, any thread count produces the same f32 bytes as the
    // serial path (simd included — the schedule is deterministic within a
    // kernel, only scalar-vs-simd semantics differ).
    let pool = Pool::new(4);
    for kern in all_kernels() {
        for &(m, n, k) in EDGE_SHAPES {
            let a = filled(m, k, 1);
            let b = filled(k, n, 2);
            let c0 = filled(m, n, 3);
            let mut serial = c0.clone();
            let mut sv = serial.view_mut();
            dgemm_with(
                kern,
                Trans::No,
                Trans::No,
                -1.0f32,
                a.view(),
                b.view(),
                1.0,
                &mut sv,
            );
            for threads in [2usize, 4] {
                let mut par = c0.clone();
                let mut pv = par.view_mut();
                dgemm_parallel_with(
                    kern,
                    &pool,
                    threads,
                    Trans::No,
                    Trans::No,
                    -1.0f32,
                    a.view(),
                    b.view(),
                    1.0,
                    &mut pv,
                );
                assert_eq!(
                    par.as_slice(),
                    serial.as_slice(),
                    "kernel {} m={m} n={n} k={k} threads={threads}",
                    kern.name()
                );
            }
        }
    }
}

#[test]
fn packed_a_path_is_bit_identical_to_on_the_fly_packing_f32() {
    for kern in all_kernels() {
        for &(m, n, k) in EDGE_SHAPES {
            let a = filled(m, k, 7);
            let b = filled(k, n, 8);
            let c0 = filled(m, n, 9);
            let mut want = c0.clone();
            let mut wv = want.view_mut();
            dgemm_with(
                kern,
                Trans::No,
                Trans::No,
                -1.0f32,
                a.view(),
                b.view(),
                1.0,
                &mut wv,
            );
            let packed = PackedA::pack(kern, Trans::No, a.view());
            assert_eq!((packed.rows(), packed.depth()), (m, k));
            let mut got = c0.clone();
            let mut gv = got.view_mut();
            dgemm_packed(kern, -1.0f32, &packed, 0, Trans::No, b.view(), 1.0, &mut gv);
            assert_eq!(
                got.as_slice(),
                want.as_slice(),
                "kernel {} m={m} n={n} k={k}",
                kern.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes and operands: every kernel stays within f32
    /// reassociation distance of the oracle.
    #[test]
    fn f32_kernels_match_naive_on_random_shapes(
        m in 1usize..48,
        n in 1usize..48,
        k in 1usize..48,
        seed in 0usize..1000,
    ) {
        let a = filled(m, k, seed);
        let b = filled(k, n, seed + 1);
        let c0 = filled(m, n, seed + 2);
        let mut want = c0.clone();
        let mut wv = want.view_mut();
        dgemm_naive(Trans::No, Trans::No, 1.0f32, a.view(), b.view(), -1.0, &mut wv);
        for kern in all_kernels() {
            let mut got = c0.clone();
            let mut gv = got.view_mut();
            dgemm_with(kern, Trans::No, Trans::No, 1.0f32, a.view(), b.view(), -1.0, &mut gv);
            for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
                prop_assert!(
                    close(*x, *y),
                    "kernel {} m={} n={} k={}: {} vs {}",
                    kern.name(), m, n, k, x, y
                );
            }
        }
    }
}
