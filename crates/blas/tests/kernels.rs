//! Kernel-dispatch correctness and determinism tests: every microkernel
//! against the naive oracle over adversarial edge shapes, bitwise
//! serial-vs-parallel equivalence per kernel, packed-A path equivalence,
//! and the allocation-free steady state of the pack arena.

use hpl_blas::mat::Matrix;
use hpl_blas::{
    arena, dgemm_naive, dgemm_packed, dgemm_parallel_with, dgemm_with, Kernel, PackedA, Trans,
};
use hpl_threads::Pool;
use proptest::prelude::*;

/// Every kernel available on this machine (scalar always; simd when the
/// CPU has one).
fn all_kernels() -> Vec<Kernel> {
    [Kernel::scalar()]
        .into_iter()
        .chain(Kernel::simd())
        .collect()
}

fn filled(r: usize, c: usize, seed: usize) -> Matrix {
    Matrix::from_fn(r, c, |i, j| {
        ((i * 29 + j * 13 + seed * 7) % 41) as f64 * 0.0625 - 1.25
    })
}

/// Shapes straddling every blocking boundary: m/n/k not multiples of
/// MR (8) / NR (4 or 6) / KC (256), degenerate m < MR, n < NR, k = 1, and
/// k crossing a KC panel boundary.
const EDGE_SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (3, 2, 1),
    (7, 5, 1),
    (8, 6, 16),
    (9, 7, 17),
    (5, 11, 3),
    (16, 12, 31),
    (33, 29, 30),
    (70, 50, 64),
    (13, 3, 300),
    (40, 9, 257),
];

#[test]
fn every_kernel_matches_naive_on_edge_shapes() {
    for kern in all_kernels() {
        for &(m, n, k) in EDGE_SHAPES {
            let a = filled(m, k, 1);
            let b = filled(k, n, 2);
            let c0 = filled(m, n, 3);
            let mut want = c0.clone();
            let mut wv = want.view_mut();
            dgemm_naive(
                Trans::No,
                Trans::No,
                -0.5,
                a.view(),
                b.view(),
                0.75,
                &mut wv,
            );
            let mut got = c0.clone();
            let mut gv = got.view_mut();
            dgemm_with(
                kern,
                Trans::No,
                Trans::No,
                -0.5,
                a.view(),
                b.view(),
                0.75,
                &mut gv,
            );
            for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
                assert!(
                    (x - y).abs() <= 1e-10 * (1.0 + y.abs()),
                    "kernel {} m={m} n={n} k={k}: {x} vs {y}",
                    kern.name()
                );
            }
        }
    }
}

#[test]
fn scalar_kernel_is_bit_identical_to_naive_order_free_cases() {
    // With k = 1 there is exactly one product per element, so even the
    // accumulation-order caveat vanishes: every kernel must be bit-equal
    // to the oracle.
    for kern in all_kernels() {
        for &(m, n) in &[(1usize, 1usize), (7, 5), (33, 29), (70, 50)] {
            let a = filled(m, 1, 4);
            let b = filled(1, n, 5);
            let c0 = filled(m, n, 6);
            let mut want = c0.clone();
            let mut wv = want.view_mut();
            dgemm_naive(Trans::No, Trans::No, 1.0, a.view(), b.view(), 1.0, &mut wv);
            let mut got = c0.clone();
            let mut gv = got.view_mut();
            dgemm_with(
                kern,
                Trans::No,
                Trans::No,
                1.0,
                a.view(),
                b.view(),
                1.0,
                &mut gv,
            );
            assert_eq!(
                got.as_slice(),
                want.as_slice(),
                "kernel {} m={m} n={n} k=1",
                kern.name()
            );
        }
    }
}

#[test]
fn scalar_serial_and_parallel_are_bit_identical() {
    // The determinism contract the schedule-equivalence and fault-soak
    // gates rely on: under the scalar kernel, any thread count produces
    // the same bytes as the serial kernel.
    let kern = Kernel::scalar();
    let pool = Pool::new(4);
    for &(m, n, k) in EDGE_SHAPES {
        let a = filled(m, k, 1);
        let b = filled(k, n, 2);
        let c0 = filled(m, n, 3);
        let mut serial = c0.clone();
        let mut sv = serial.view_mut();
        dgemm_with(
            kern,
            Trans::No,
            Trans::No,
            -1.0,
            a.view(),
            b.view(),
            1.0,
            &mut sv,
        );
        for threads in [2usize, 4] {
            let mut par = c0.clone();
            let mut pv = par.view_mut();
            dgemm_parallel_with(
                kern,
                &pool,
                threads,
                Trans::No,
                Trans::No,
                -1.0,
                a.view(),
                b.view(),
                1.0,
                &mut pv,
            );
            assert_eq!(
                par.as_slice(),
                serial.as_slice(),
                "m={m} n={n} k={k} threads={threads}"
            );
        }
    }
}

#[test]
fn packed_a_path_is_bit_identical_to_on_the_fly_packing() {
    for kern in all_kernels() {
        for &(m, n, k) in EDGE_SHAPES {
            let a = filled(m, k, 7);
            let b = filled(k, n, 8);
            let c0 = filled(m, n, 9);
            let mut want = c0.clone();
            let mut wv = want.view_mut();
            dgemm_with(
                kern,
                Trans::No,
                Trans::No,
                -1.0,
                a.view(),
                b.view(),
                1.0,
                &mut wv,
            );
            let packed = PackedA::pack(kern, Trans::No, a.view());
            assert_eq!((packed.rows(), packed.depth()), (m, k));
            let mut got = c0.clone();
            let mut gv = got.view_mut();
            dgemm_packed(kern, -1.0, &packed, 0, Trans::No, b.view(), 1.0, &mut gv);
            assert_eq!(
                got.as_slice(),
                want.as_slice(),
                "kernel {} m={m} n={n} k={k}",
                kern.name()
            );
        }
    }
}

#[test]
fn second_dgemm_call_performs_zero_allocations() {
    // A dedicated thread gives the test a pristine arena. The first call
    // grows the thread's buffers; the second identical call must reuse
    // them outright.
    std::thread::spawn(|| {
        let a = filled(100, 60, 1);
        let b = filled(60, 80, 2);
        let run = || {
            let mut c = Matrix::zeros(100, 80);
            let mut cv = c.view_mut();
            dgemm_with(
                Kernel::scalar(),
                Trans::No,
                Trans::No,
                1.0,
                a.view(),
                b.view(),
                0.0,
                &mut cv,
            );
        };
        run();
        let after_first = arena::thread_stats();
        assert!(after_first.grows >= 1, "first call must size the arena");
        run();
        let after_second = arena::thread_stats();
        assert_eq!(
            after_second.grows, after_first.grows,
            "second call must not allocate"
        );
        assert_eq!(after_second.calls, after_first.calls + 1);
        assert_eq!(after_second.capacity, after_first.capacity);
    })
    .join()
    .expect("arena test thread panicked");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes and operands: every kernel stays within float
    /// reassociation distance of the oracle.
    #[test]
    fn kernels_match_naive_on_random_shapes(
        m in 1usize..48,
        n in 1usize..48,
        k in 1usize..48,
        seed in 0usize..1000,
    ) {
        let a = filled(m, k, seed);
        let b = filled(k, n, seed + 1);
        let c0 = filled(m, n, seed + 2);
        let mut want = c0.clone();
        let mut wv = want.view_mut();
        dgemm_naive(Trans::No, Trans::No, 1.0, a.view(), b.view(), -1.0, &mut wv);
        for kern in all_kernels() {
            let mut got = c0.clone();
            let mut gv = got.view_mut();
            dgemm_with(kern, Trans::No, Trans::No, 1.0, a.view(), b.view(), -1.0, &mut gv);
            for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
                prop_assert!(
                    (x - y).abs() <= 1e-10 * (1.0 + y.abs()),
                    "kernel {} m={} n={} k={}: {} vs {}",
                    kern.name(), m, n, k, x, y
                );
            }
        }
    }
}
