//! Property-based tests for the BLAS kernels.

use hpl_blas::mat::Matrix;
use hpl_blas::{
    dgemm, dgemm_naive, dgemv, dlange, dlaswp, dlaswp_inv, getrf, getrs, idamax, Norm, Trans,
};
use proptest::prelude::*;

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f64..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn idamax_returns_max_abs(v in proptest::collection::vec(-100.0f64..100.0, 1..200)) {
        let i = idamax(&v).unwrap();
        let m = v.iter().map(|x| x.abs()).fold(0.0, f64::max);
        prop_assert_eq!(v[i].abs(), m);
        // First occurrence wins.
        for &x in &v[..i] {
            prop_assert!(x.abs() < m);
        }
    }

    #[test]
    fn dgemm_identity_left_is_noop(b in matrix_strategy(24)) {
        let id = Matrix::identity(b.rows());
        let mut c = Matrix::zeros(b.rows(), b.cols());
        let mut cv = c.view_mut();
        dgemm(Trans::No, Trans::No, 1.0, id.view(), b.view(), 0.0, &mut cv);
        for (x, y) in c.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn dgemm_is_linear_in_alpha(a in matrix_strategy(16), bcols in 1usize..16) {
        let b = Matrix::from_fn(a.cols(), bcols, |i, j| ((i * 3 + j * 7) % 13) as f64 - 6.0);
        let mut c1 = Matrix::zeros(a.rows(), bcols);
        let mut c2 = Matrix::zeros(a.rows(), bcols);
        let mut v1 = c1.view_mut();
        dgemm(Trans::No, Trans::No, 2.0, a.view(), b.view(), 0.0, &mut v1);
        let mut v2 = c2.view_mut();
        dgemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, &mut v2);
        for (x, y) in c1.as_slice().iter().zip(c2.as_slice()) {
            prop_assert!((x - 2.0 * y).abs() < 1e-10);
        }
    }

    #[test]
    fn dgemm_transpose_consistency(a in matrix_strategy(20), bcols in 1usize..20) {
        // op(A)=A^T computed directly vs materialized transpose.
        let at = Matrix::from_fn(a.cols(), a.rows(), |i, j| a.get(j, i));
        let b = Matrix::from_fn(a.rows(), bcols, |i, j| (i as f64 - j as f64) * 0.25);
        let mut c1 = Matrix::zeros(a.cols(), bcols);
        let mut c2 = Matrix::zeros(a.cols(), bcols);
        let mut v1 = c1.view_mut();
        dgemm(Trans::Yes, Trans::No, 1.0, a.view(), b.view(), 0.0, &mut v1);
        let mut v2 = c2.view_mut();
        dgemm_naive(Trans::No, Trans::No, 1.0, at.view(), b.view(), 0.0, &mut v2);
        for (x, y) in c1.as_slice().iter().zip(c2.as_slice()) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn dlaswp_inverse_roundtrips(
        rows in 2usize..30,
        cols in 1usize..10,
        seed in 0u64..1000,
    ) {
        let orig = Matrix::from_fn(rows, cols, |i, j| (i + j * 1000) as f64);
        let mut a = orig.clone();
        // Valid pivot vector: ipiv[k] in [k, rows).
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let npiv = rows.min(cols + 3);
        let ipiv: Vec<usize> = (0..npiv)
            .map(|k| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                k + (s >> 33) as usize % (rows - k)
            })
            .collect();
        let mut v = a.view_mut();
        dlaswp(&mut v, &ipiv);
        let mut v = a.view_mut();
        dlaswp_inv(&mut v, &ipiv);
        prop_assert_eq!(a, orig);
    }

    #[test]
    fn lu_solve_recovers_solution(n in 1usize..40, seed in 0u64..500) {
        let mut s = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        // Diagonally dominant => nonsingular and well conditioned.
        let mut a = Matrix::from_fn(n, n, |_, _| next());
        for i in 0..n {
            let v = a.get(i, i);
            a.set(i, i, v + n as f64);
        }
        let xtrue: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut b = vec![0.0; n];
        dgemv(Trans::No, 1.0, a.view(), &xtrue, 0.0, &mut b);
        let mut piv = vec![0usize; n];
        let mut av = a.view_mut();
        getrf(&mut av, &mut piv, 8).unwrap();
        getrs(&av, &piv, &mut b);
        for (got, want) in b.iter().zip(&xtrue) {
            prop_assert!((got - want).abs() < 1e-7);
        }
    }

    #[test]
    fn norms_are_consistent(a in matrix_strategy(20)) {
        let mx = dlange(Norm::Max, a.view());
        let one = dlange(Norm::One, a.view());
        let inf = dlange(Norm::Inf, a.view());
        prop_assert!(mx <= one + 1e-12);
        prop_assert!(mx <= inf + 1e-12);
        prop_assert!(one <= mx * a.rows() as f64 + 1e-9);
        prop_assert!(inf <= mx * a.cols() as f64 + 1e-9);
    }
}
