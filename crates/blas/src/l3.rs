//! Level-3 BLAS kernels: GEMM and TRSM, generic over the pipeline
//! [`Element`] (f64 and f32 instantiate the same code).
//!
//! GEMM is the kernel that dominates HPL's trailing update; it is
//! implemented GotoBLAS-style with cache blocking, panel packing and an
//! `MR x NR` register microkernel supplied by [`kernels`] — the portable
//! scalar tile or a runtime-detected SIMD tile (see that module for the
//! accumulation-order contract). Pack workspaces come from the
//! thread-local [`crate::arena`], so steady-state calls are
//! allocation-free, and a panel of `A` can be packed once into a
//! [`PackedA`] and reused across many calls — the `L2` panel of the
//! trailing update is packed once per iteration and shared across the
//! split-update sections and all worker threads. TRSM recurses on the
//! triangular factor and delegates the rectangular updates to GEMM, so it
//! inherits its throughput.

pub mod kernels;

use crate::arena;
use crate::mat::{MatMut, MatRef};
use crate::Element;
use crate::{Diag, Side, Trans, Uplo};
use kernels::Kernel;

/// Cache block in the `m` dimension (packed A panel height).
pub(crate) const MC: usize = 256;
/// Cache block in the `k` dimension (packed panel depth).
pub(crate) const KC: usize = 256;
/// Cache block in the `n` dimension (packed B panel width).
pub(crate) const NC: usize = 2048;

/// General matrix-matrix multiply `C <- alpha * op(A) * op(B) + beta * C`
/// using the process-wide [`kernels::active`] microkernel.
///
/// Dimensions: `op(A)` is `m x k`, `op(B)` is `k x n`, `C` is `m x n`.
pub fn dgemm<E: Element>(
    transa: Trans,
    transb: Trans,
    alpha: E,
    a: MatRef<'_, E>,
    b: MatRef<'_, E>,
    beta: E,
    c: &mut MatMut<'_, E>,
) {
    dgemm_with(kernels::active(), transa, transb, alpha, a, b, beta, c);
}

/// [`dgemm`] with an explicit microkernel — the entry point the parallel
/// and test paths use so every tile of one logical GEMM shares a single
/// accumulation semantics.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_with<E: Element>(
    kern: Kernel,
    transa: Trans,
    transb: Trans,
    alpha: E,
    a: MatRef<'_, E>,
    b: MatRef<'_, E>,
    beta: E,
    c: &mut MatMut<'_, E>,
) {
    let m = c.rows();
    let n = c.cols();
    let k = checked_dims(transa, transb, a, b, c);
    if m == 0 || n == 0 {
        return;
    }
    if alpha == E::ZERO || k == 0 {
        scale_c(beta, c);
        return;
    }
    let (mr, nr) = (kern.mr_for::<E>(), kern.nr_for::<E>());
    // Pack workspaces from the thread-local arena: zero allocations in the
    // steady state. The packing below overwrites every element the macro
    // kernel reads (padding included), so stale contents are harmless.
    let alen = round_up(m.min(MC), mr) * k.min(KC);
    let blen = k.min(KC) * round_up(n.min(NC), nr);
    arena::with_pack_bufs::<E, _>(alen, blen, |apack, bpack| {
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                pack_b(transb, b, pc, jc, kc, nc, nr, bpack);
                // beta applies only on the first k-panel; afterwards
                // accumulate.
                let beta_eff = if pc == 0 { beta } else { E::ONE };
                for ic in (0..m).step_by(MC) {
                    let mc = MC.min(m - ic);
                    pack_a(transa, a, ic, pc, mc, kc, mr, apack);
                    macro_kernel(
                        kern,
                        mc,
                        nc,
                        kc,
                        alpha,
                        apack,
                        bpack,
                        beta_eff,
                        &mut c.submatrix_mut(ic, jc, mc, nc),
                    );
                }
            }
        }
    });
}

/// Validates the `op(A)` / `op(B)` / `C` dimension triangle; returns `k`.
fn checked_dims<E: Element>(
    transa: Trans,
    transb: Trans,
    a: MatRef<'_, E>,
    b: MatRef<'_, E>,
    c: &MatMut<'_, E>,
) -> usize {
    let m = c.rows();
    let n = c.cols();
    let k = match transa {
        Trans::No => {
            assert_eq!(a.rows(), m, "dgemm: op(A) rows != C rows");
            a.cols()
        }
        Trans::Yes => {
            assert_eq!(a.cols(), m, "dgemm: op(A) rows != C rows");
            a.rows()
        }
    };
    match transb {
        Trans::No => {
            assert_eq!(b.rows(), k, "dgemm: op(B) rows != op(A) cols");
            assert_eq!(b.cols(), n, "dgemm: op(B) cols != C cols");
        }
        Trans::Yes => {
            assert_eq!(b.cols(), k, "dgemm: op(B) rows != op(A) cols");
            assert_eq!(b.rows(), n, "dgemm: op(B) cols != C cols");
        }
    }
    k
}

/// A full `m x k` operand `op(A)` packed once into register-strip layout
/// for reuse across many GEMM calls.
///
/// The `k` dimension is cut into the same `KC` panels [`dgemm`] uses:
/// panel `pc` starts at element `mup * pc` (`mup` = `m` rounded up to the
/// kernel's `mr`) and holds `ceil(m / mr)` strips of `kc * mr` values
/// each — bit-for-bit what `dgemm` would pack on the fly, which keeps the
/// packed and on-the-fly paths bitwise interchangeable.
pub struct PackedA<E: Element = f64> {
    buf: Vec<E>,
    mr: usize,
    m: usize,
    k: usize,
    mup: usize,
}

impl<E: Element> PackedA<E> {
    /// Packs all of the `m x k` operand `op(A)` for kernel `kern`.
    pub fn pack(kern: Kernel, transa: Trans, a: MatRef<'_, E>) -> PackedA<E> {
        let (m, k) = match transa {
            Trans::No => (a.rows(), a.cols()),
            Trans::Yes => (a.cols(), a.rows()),
        };
        let mr = kern.mr_for::<E>();
        let mup = round_up(m, mr);
        // xtask-allow: hot-path-alloc — panel-grain cache: packed once per panel (amortized over O(nb^3) work) and owned by the returned PackedA, so arena scratch cannot back it
        let mut buf = vec![E::ZERO; mup * k];
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_a(
                transa,
                a,
                0,
                pc,
                m,
                kc,
                mr,
                &mut buf[mup * pc..mup * pc + mup * kc],
            );
        }
        PackedA { buf, mr, m, k, mup }
    }

    /// Row count of the packed operand.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Depth (`k`) of the packed operand.
    pub fn depth(&self) -> usize {
        self.k
    }

    /// Register-strip height this operand was packed for.
    pub fn mr(&self) -> usize {
        self.mr
    }

    /// The packed strips covering rows `ic..ic+mc` of `k`-panel `pc`, in
    /// exactly the layout [`macro_kernel`] consumes. `ic` must be
    /// `mr`-aligned and (`pc`, `kc`) must name one of the `KC` panels the
    /// constructor created.
    fn block(&self, ic: usize, pc: usize, mc: usize, kc: usize) -> &[E] {
        debug_assert_eq!(ic % self.mr, 0);
        debug_assert_eq!(pc % KC, 0);
        debug_assert_eq!(kc, KC.min(self.k - pc));
        debug_assert!(ic + mc <= self.m);
        let start = self.mup * pc + (ic / self.mr) * kc * self.mr;
        &self.buf[start..start + round_up(mc, self.mr) * kc]
    }
}

/// `C <- alpha * A[row0 .. row0 + C.rows(), :] * op(B) + beta * C` where
/// `A` was packed ahead of time with [`PackedA::pack`].
///
/// `row0` must be `mr`-aligned (row tiles in the parallel path are) and
/// `kern` must be the kernel `packed` was built for. Bitwise identical to
/// [`dgemm_with`] on the same operands and kernel.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_packed<E: Element>(
    kern: Kernel,
    alpha: E,
    packed: &PackedA<E>,
    row0: usize,
    transb: Trans,
    b: MatRef<'_, E>,
    beta: E,
    c: &mut MatMut<'_, E>,
) {
    let m = c.rows();
    let n = c.cols();
    let k = packed.k;
    assert_eq!(
        packed.mr,
        kern.mr_for::<E>(),
        "dgemm_packed: kernel/packing mismatch"
    );
    assert_eq!(
        row0 % kern.mr_for::<E>(),
        0,
        "dgemm_packed: row0 must be mr-aligned"
    );
    assert!(row0 + m <= packed.m, "dgemm_packed: rows out of range");
    match transb {
        Trans::No => {
            assert_eq!(b.rows(), k, "dgemm_packed: op(B) rows != A depth");
            assert_eq!(b.cols(), n, "dgemm_packed: op(B) cols != C cols");
        }
        Trans::Yes => {
            assert_eq!(b.cols(), k, "dgemm_packed: op(B) rows != A depth");
            assert_eq!(b.rows(), n, "dgemm_packed: op(B) cols != C cols");
        }
    }
    if m == 0 || n == 0 {
        return;
    }
    if alpha == E::ZERO || k == 0 {
        scale_c(beta, c);
        return;
    }
    let nr = kern.nr_for::<E>();
    let blen = k.min(KC) * round_up(n.min(NC), nr);
    arena::with_pack_bufs::<E, _>(0, blen, |_, bpack| {
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                pack_b(transb, b, pc, jc, kc, nc, nr, bpack);
                let beta_eff = if pc == 0 { beta } else { E::ONE };
                for ic in (0..m).step_by(MC) {
                    let mc = MC.min(m - ic);
                    let apack = packed.block(row0 + ic, pc, mc, kc);
                    macro_kernel(
                        kern,
                        mc,
                        nc,
                        kc,
                        alpha,
                        apack,
                        bpack,
                        beta_eff,
                        &mut c.submatrix_mut(ic, jc, mc, nc),
                    );
                }
            }
        }
    });
}

/// Rounds `x` up to a multiple of `to`.
#[inline]
pub(crate) fn round_up(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

fn scale_c<E: Element>(beta: E, c: &mut MatMut<'_, E>) {
    if beta == E::ONE {
        return;
    }
    for j in 0..c.cols() {
        if beta == E::ZERO {
            c.col_mut(j).fill(E::ZERO);
        } else {
            for v in c.col_mut(j) {
                *v *= beta;
            }
        }
    }
}

/// Packs an `mc x kc` block of `op(A)` starting at `(ic, pc)` into
/// `mr`-row strips, each strip stored k-major, zero-padded to `mr`.
#[allow(clippy::too_many_arguments)]
fn pack_a<E: Element>(
    transa: Trans,
    a: MatRef<'_, E>,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    mr: usize,
    out: &mut [E],
) {
    let mut off = 0;
    for i0 in (0..mc).step_by(mr) {
        let mh = mr.min(mc - i0);
        for p in 0..kc {
            for i in 0..mr {
                out[off + i] = if i < mh {
                    match transa {
                        Trans::No => a.get(ic + i0 + i, pc + p),
                        Trans::Yes => a.get(pc + p, ic + i0 + i),
                    }
                } else {
                    E::ZERO
                };
            }
            off += mr;
        }
    }
}

/// Packs a `kc x nc` block of `op(B)` starting at `(pc, jc)` into
/// `nr`-column strips, each strip stored k-major, zero-padded to `nr`.
#[allow(clippy::too_many_arguments)]
fn pack_b<E: Element>(
    transb: Trans,
    b: MatRef<'_, E>,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
    nr: usize,
    out: &mut [E],
) {
    let mut off = 0;
    for j0 in (0..nc).step_by(nr) {
        let nw = nr.min(nc - j0);
        for p in 0..kc {
            for j in 0..nr {
                out[off + j] = if j < nw {
                    match transb {
                        Trans::No => b.get(pc + p, jc + j0 + j),
                        Trans::Yes => b.get(jc + j0 + j, pc + p),
                    }
                } else {
                    E::ZERO
                };
            }
            off += nr;
        }
    }
}

/// Multiplies packed panels into the `mc x nc` block of C through `kern`'s
/// register tile, then applies the alpha/beta writeback with edge guards.
#[allow(clippy::too_many_arguments)]
fn macro_kernel<E: Element>(
    kern: Kernel,
    mc: usize,
    nc: usize,
    kc: usize,
    alpha: E,
    apack: &[E],
    bpack: &[E],
    beta: E,
    c: &mut MatMut<'_, E>,
) {
    let (mr, nr) = (kern.mr_for::<E>(), kern.nr_for::<E>());
    let mut accbuf = [E::ZERO; kernels::MAX_TILE];
    let acc = &mut accbuf[..mr * nr];
    for (jb, j0) in (0..nc).step_by(nr).enumerate() {
        let nw = nr.min(nc - j0);
        let bstrip = &bpack[jb * kc * nr..(jb + 1) * kc * nr];
        for (ib, i0) in (0..mc).step_by(mr).enumerate() {
            let mh = mr.min(mc - i0);
            let astrip = &apack[ib * kc * mr..(ib + 1) * kc * mr];
            acc.fill(E::ZERO);
            kern.micro(kc, astrip, bstrip, acc);
            // Write back with alpha/beta and edge guards. Each C element
            // depends only on its own accumulator lane, so edge padding
            // never leaks into stored values.
            for j in 0..nw {
                let lane = &acc[j * mr..j * mr + mh];
                let col = &mut c.col_mut(j0 + j)[i0..i0 + mh];
                if beta == E::ZERO {
                    for (ci, &acci) in col.iter_mut().zip(lane) {
                        *ci = alpha * acci;
                    }
                } else if beta == E::ONE {
                    for (ci, &acci) in col.iter_mut().zip(lane) {
                        *ci += alpha * acci;
                    }
                } else {
                    for (ci, &acci) in col.iter_mut().zip(lane) {
                        *ci = beta * *ci + alpha * acci;
                    }
                }
            }
        }
    }
}

/// Reference (naive) GEMM used by tests and as a fallback oracle.
pub fn dgemm_naive<E: Element>(
    transa: Trans,
    transb: Trans,
    alpha: E,
    a: MatRef<'_, E>,
    b: MatRef<'_, E>,
    beta: E,
    c: &mut MatMut<'_, E>,
) {
    let m = c.rows();
    let n = c.cols();
    let k = match transa {
        Trans::No => a.cols(),
        Trans::Yes => a.rows(),
    };
    for j in 0..n {
        for i in 0..m {
            let mut s = E::ZERO;
            for p in 0..k {
                let aip = match transa {
                    Trans::No => a.get(i, p),
                    Trans::Yes => a.get(p, i),
                };
                let bpj = match transb {
                    Trans::No => b.get(p, j),
                    Trans::Yes => b.get(j, p),
                };
                s += aip * bpj;
            }
            let old = c.get(i, j);
            c.set(i, j, alpha * s + beta * old);
        }
    }
}

/// Triangular solve with multiple right-hand sides:
/// `B <- alpha * op(T)^{-1} B` (Side::Left) or `B <- alpha * B * op(T)^{-1}`
/// (Side::Right), where `T` is triangular per `uplo`/`diag`.
pub fn dtrsm<E: Element>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    alpha: E,
    t: MatRef<'_, E>,
    b: &mut MatMut<'_, E>,
) {
    let dim = match side {
        Side::Left => b.rows(),
        Side::Right => b.cols(),
    };
    assert_eq!(t.rows(), dim, "dtrsm: T dimension mismatch");
    assert_eq!(t.cols(), dim, "dtrsm: T must be square");
    if b.is_empty() {
        return;
    }
    if alpha != E::ONE {
        for j in 0..b.cols() {
            for v in b.col_mut(j) {
                *v *= alpha;
            }
        }
    }
    dtrsm_rec(
        side,
        uplo,
        trans,
        diag,
        t,
        &mut b.submatrix_mut(0, 0, b.rows(), b.cols()),
    );
}

/// Recursion cutoff for the triangular dimension.
const TRSM_BASE: usize = 32;

fn dtrsm_rec<E: Element>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    t: MatRef<'_, E>,
    b: &mut MatMut<'_, E>,
) {
    let n = t.rows();
    if n == 0 {
        return;
    }
    if n <= TRSM_BASE {
        dtrsm_unblocked(side, uplo, trans, diag, t, b);
        return;
    }
    let h = n / 2;
    let t11 = t.submatrix(0, 0, h, h);
    let t22 = t.submatrix(h, h, n - h, n - h);
    // The off-diagonal block of the triangle.
    let (t21, t12) = (
        if matches!(uplo, Uplo::Lower) {
            Some(t.submatrix(h, 0, n - h, h))
        } else {
            None
        },
        if matches!(uplo, Uplo::Upper) {
            Some(t.submatrix(0, h, h, n - h))
        } else {
            None
        },
    );
    match side {
        Side::Left => {
            let nrhs = b.cols();
            let (mut b1, mut b2) = b.submatrix_mut(0, 0, n, nrhs).split_at_row(h);
            // Effective operator is op(T); "lower" behaviour means the first
            // block row is solved first.
            let lower_first = matches!(
                (uplo, trans),
                (Uplo::Lower, Trans::No) | (Uplo::Upper, Trans::Yes)
            );
            if lower_first {
                dtrsm_rec(side, uplo, trans, diag, t11, &mut b1);
                // B2 -= op(T)21 * X1.
                match (uplo, trans) {
                    (Uplo::Lower, Trans::No) => dgemm(
                        Trans::No,
                        Trans::No,
                        -E::ONE,
                        t21.expect("off-diagonal block present when n > 1"),
                        b1.as_ref(),
                        E::ONE,
                        &mut b2,
                    ),
                    (Uplo::Upper, Trans::Yes) => dgemm(
                        Trans::Yes,
                        Trans::No,
                        -E::ONE,
                        t12.expect("off-diagonal block present when n > 1"),
                        b1.as_ref(),
                        E::ONE,
                        &mut b2,
                    ),
                    _ => unreachable!(),
                }
                dtrsm_rec(side, uplo, trans, diag, t22, &mut b2);
            } else {
                dtrsm_rec(side, uplo, trans, diag, t22, &mut b2);
                // B1 -= op(T)12 * X2.
                match (uplo, trans) {
                    (Uplo::Upper, Trans::No) => dgemm(
                        Trans::No,
                        Trans::No,
                        -E::ONE,
                        t12.expect("off-diagonal block present when n > 1"),
                        b2.as_ref(),
                        E::ONE,
                        &mut b1,
                    ),
                    (Uplo::Lower, Trans::Yes) => dgemm(
                        Trans::Yes,
                        Trans::No,
                        -E::ONE,
                        t21.expect("off-diagonal block present when n > 1"),
                        b2.as_ref(),
                        E::ONE,
                        &mut b1,
                    ),
                    _ => unreachable!(),
                }
                dtrsm_rec(side, uplo, trans, diag, t11, &mut b1);
            }
        }
        Side::Right => {
            let nrows = b.rows();
            let (mut b1, mut b2) = b.submatrix_mut(0, 0, nrows, n).split_at_col(h);
            // X * op(T) = B. "first" = the block column solved first.
            let first_is_left = matches!(
                (uplo, trans),
                (Uplo::Upper, Trans::No) | (Uplo::Lower, Trans::Yes)
            );
            if first_is_left {
                dtrsm_rec(side, uplo, trans, diag, t11, &mut b1);
                // B2 -= X1 * op(T)12.
                match (uplo, trans) {
                    (Uplo::Upper, Trans::No) => dgemm(
                        Trans::No,
                        Trans::No,
                        -E::ONE,
                        b1.as_ref(),
                        t12.expect("off-diagonal block present when n > 1"),
                        E::ONE,
                        &mut b2,
                    ),
                    (Uplo::Lower, Trans::Yes) => dgemm(
                        Trans::No,
                        Trans::Yes,
                        -E::ONE,
                        b1.as_ref(),
                        t21.expect("off-diagonal block present when n > 1"),
                        E::ONE,
                        &mut b2,
                    ),
                    _ => unreachable!(),
                }
                dtrsm_rec(side, uplo, trans, diag, t22, &mut b2);
            } else {
                dtrsm_rec(side, uplo, trans, diag, t22, &mut b2);
                // B1 -= X2 * op(T)21.
                match (uplo, trans) {
                    (Uplo::Lower, Trans::No) => dgemm(
                        Trans::No,
                        Trans::No,
                        -E::ONE,
                        b2.as_ref(),
                        t21.expect("off-diagonal block present when n > 1"),
                        E::ONE,
                        &mut b1,
                    ),
                    (Uplo::Upper, Trans::Yes) => dgemm(
                        Trans::No,
                        Trans::Yes,
                        -E::ONE,
                        b2.as_ref(),
                        t12.expect("off-diagonal block present when n > 1"),
                        E::ONE,
                        &mut b1,
                    ),
                    _ => unreachable!(),
                }
                dtrsm_rec(side, uplo, trans, diag, t11, &mut b1);
            }
        }
    }
}

/// Unblocked triangular solve used as the recursion base case.
fn dtrsm_unblocked<E: Element>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    t: MatRef<'_, E>,
    b: &mut MatMut<'_, E>,
) {
    let n = t.rows();
    match side {
        Side::Left => {
            // Solve op(T) X = B column by column of B.
            let forward = matches!(
                (uplo, trans),
                (Uplo::Lower, Trans::No) | (Uplo::Upper, Trans::Yes)
            );
            for j in 0..b.cols() {
                let col = b.col_mut(j);
                if forward {
                    for r in 0..n {
                        let mut s = col[r];
                        for p in 0..r {
                            let trp = match trans {
                                Trans::No => t.get(r, p),
                                Trans::Yes => t.get(p, r),
                            };
                            s -= trp * col[p];
                        }
                        col[r] = match diag {
                            Diag::Unit => s,
                            Diag::NonUnit => s / t.get(r, r),
                        };
                    }
                } else {
                    for r in (0..n).rev() {
                        let mut s = col[r];
                        for p in r + 1..n {
                            let trp = match trans {
                                Trans::No => t.get(r, p),
                                Trans::Yes => t.get(p, r),
                            };
                            s -= trp * col[p];
                        }
                        col[r] = match diag {
                            Diag::Unit => s,
                            Diag::NonUnit => s / t.get(r, r),
                        };
                    }
                }
            }
        }
        Side::Right => {
            // Solve X op(T) = B row-block at a time: process B's columns in
            // dependency order; column c of X depends on previously solved
            // columns.
            let forward = matches!(
                (uplo, trans),
                (Uplo::Upper, Trans::No) | (Uplo::Lower, Trans::Yes)
            );
            let m = b.rows();
            // Dependency order as index arithmetic (`ci`-th solved column is
            // `ci` forward, `n-1-ci` backward): this loop sits on the dtrsm
            // hot path, so it must not materialize an order list.
            let at = |i: usize| if forward { i } else { n - 1 - i };
            for ci in 0..n {
                let c = at(ci);
                // X[:,c] = (B[:,c] - sum_{p solved before} X[:,p] * op(T)[p,c]) / op(T)[c,c]
                let tcc = match diag {
                    Diag::Unit => E::ONE,
                    Diag::NonUnit => t.get(c, c),
                };
                // The columns solved before `c` are exactly `at(0..ci)`.
                for p in (0..ci).map(at) {
                    let tpc = match trans {
                        Trans::No => t.get(p, c),
                        Trans::Yes => t.get(c, p),
                    };
                    if tpc != E::ZERO {
                        // B[:,c] -= X[:,p] * tpc; split to satisfy borrows.
                        for i in 0..m {
                            let xp = b.get(i, p);
                            let v = b.get(i, c) - xp * tpc;
                            b.set(i, c, v);
                        }
                    }
                }
                if matches!(diag, Diag::NonUnit) {
                    for v in b.col_mut(c) {
                        *v /= tcc;
                    }
                }
            }
        }
    }
}
