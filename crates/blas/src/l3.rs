//! Level-3 BLAS kernels: DGEMM and DTRSM.
//!
//! DGEMM is the kernel that dominates HPL's trailing update; it is
//! implemented GotoBLAS-style with cache blocking, panel packing and an
//! `MR x NR` register microkernel. DTRSM recurses on the triangular factor
//! and delegates the rectangular updates to DGEMM, so it inherits its
//! throughput.

use crate::mat::{MatMut, MatRef};
use crate::{Diag, Side, Trans, Uplo};

/// Rows of the register microkernel tile.
const MR: usize = 8;
/// Columns of the register microkernel tile.
const NR: usize = 4;
/// Cache block in the `m` dimension (packed A panel height).
const MC: usize = 256;
/// Cache block in the `k` dimension (packed panel depth).
const KC: usize = 256;
/// Cache block in the `n` dimension (packed B panel width).
const NC: usize = 2048;

/// General matrix-matrix multiply `C <- alpha * op(A) * op(B) + beta * C`.
///
/// Dimensions: `op(A)` is `m x k`, `op(B)` is `k x n`, `C` is `m x n`.
pub fn dgemm(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    c: &mut MatMut<'_>,
) {
    let m = c.rows();
    let n = c.cols();
    let k = match transa {
        Trans::No => {
            assert_eq!(a.rows(), m, "dgemm: op(A) rows != C rows");
            a.cols()
        }
        Trans::Yes => {
            assert_eq!(a.cols(), m, "dgemm: op(A) rows != C rows");
            a.rows()
        }
    };
    match transb {
        Trans::No => {
            assert_eq!(b.rows(), k, "dgemm: op(B) rows != op(A) cols");
            assert_eq!(b.cols(), n, "dgemm: op(B) cols != C cols");
        }
        Trans::Yes => {
            assert_eq!(b.cols(), k, "dgemm: op(B) rows != op(A) cols");
            assert_eq!(b.rows(), n, "dgemm: op(B) cols != C cols");
        }
    }
    if m == 0 || n == 0 {
        return;
    }
    if alpha == 0.0 || k == 0 {
        scale_c(beta, c);
        return;
    }

    // Workspaces for packed panels. Allocated per call; HPL reuses large
    // updates so the allocation cost is negligible relative to the O(mnk)
    // arithmetic.
    let mut apack = vec![0.0f64; MC.min(round_up(m, MR)) * KC.min(k)];
    let mut bpack = vec![0.0f64; KC.min(k) * NC.min(round_up(n, NR))];

    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(transb, b, pc, jc, kc, nc, &mut bpack);
            // beta applies only on the first k-panel; afterwards accumulate.
            let beta_eff = if pc == 0 { beta } else { 1.0 };
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(transa, a, ic, pc, mc, kc, &mut apack);
                macro_kernel(
                    mc,
                    nc,
                    kc,
                    alpha,
                    &apack,
                    &bpack,
                    beta_eff,
                    &mut c.submatrix_mut(ic, jc, mc, nc),
                );
            }
        }
    }
}

#[inline]
fn round_up(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

fn scale_c(beta: f64, c: &mut MatMut<'_>) {
    if beta == 1.0 {
        return;
    }
    for j in 0..c.cols() {
        if beta == 0.0 {
            c.col_mut(j).fill(0.0);
        } else {
            for v in c.col_mut(j) {
                *v *= beta;
            }
        }
    }
}

/// Packs an `mc x kc` block of `op(A)` starting at `(ic, pc)` into
/// MR-row strips, each strip stored k-major, zero-padded to MR.
fn pack_a(
    transa: Trans,
    a: MatRef<'_>,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    out: &mut [f64],
) {
    let mut off = 0;
    for i0 in (0..mc).step_by(MR) {
        let mr = MR.min(mc - i0);
        for p in 0..kc {
            for i in 0..MR {
                out[off + i] = if i < mr {
                    match transa {
                        Trans::No => a.get(ic + i0 + i, pc + p),
                        Trans::Yes => a.get(pc + p, ic + i0 + i),
                    }
                } else {
                    0.0
                };
            }
            off += MR;
        }
    }
}

/// Packs a `kc x nc` block of `op(B)` starting at `(pc, jc)` into NR-column
/// strips, each strip stored k-major, zero-padded to NR.
fn pack_b(
    transb: Trans,
    b: MatRef<'_>,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
    out: &mut [f64],
) {
    let mut off = 0;
    for j0 in (0..nc).step_by(NR) {
        let nr = NR.min(nc - j0);
        for p in 0..kc {
            for j in 0..NR {
                out[off + j] = if j < nr {
                    match transb {
                        Trans::No => b.get(pc + p, jc + j0 + j),
                        Trans::Yes => b.get(jc + j0 + j, pc + p),
                    }
                } else {
                    0.0
                };
            }
            off += NR;
        }
    }
}

/// Multiplies packed panels into the `mc x nc` block of C.
fn macro_kernel(
    mc: usize,
    nc: usize,
    kc: usize,
    alpha: f64,
    apack: &[f64],
    bpack: &[f64],
    beta: f64,
    c: &mut MatMut<'_>,
) {
    for (jb, j0) in (0..nc).step_by(NR).enumerate() {
        let nr = NR.min(nc - j0);
        let bstrip = &bpack[jb * kc * NR..(jb + 1) * kc * NR];
        for (ib, i0) in (0..mc).step_by(MR).enumerate() {
            let mr = MR.min(mc - i0);
            let astrip = &apack[ib * kc * MR..(ib + 1) * kc * MR];
            let mut acc = [[0.0f64; MR]; NR];
            micro_kernel(kc, astrip, bstrip, &mut acc);
            // Write back with alpha/beta and edge guards.
            for j in 0..nr {
                let col = &mut c.col_mut(j0 + j)[i0..i0 + mr];
                if beta == 0.0 {
                    for (i, ci) in col.iter_mut().enumerate() {
                        *ci = alpha * acc[j][i];
                    }
                } else if beta == 1.0 {
                    for (i, ci) in col.iter_mut().enumerate() {
                        *ci += alpha * acc[j][i];
                    }
                } else {
                    for (i, ci) in col.iter_mut().enumerate() {
                        *ci = beta * *ci + alpha * acc[j][i];
                    }
                }
            }
        }
    }
}

/// The `MR x NR` register tile: `acc[j][i] = sum_p astrip[p*MR+i] * bstrip[p*NR+j]`.
#[inline(always)]
fn micro_kernel(kc: usize, astrip: &[f64], bstrip: &[f64], acc: &mut [[f64; MR]; NR]) {
    debug_assert!(astrip.len() >= kc * MR);
    debug_assert!(bstrip.len() >= kc * NR);
    for p in 0..kc {
        let av: &[f64; MR] = astrip[p * MR..p * MR + MR]
            .try_into()
            .expect("slice is exactly MR long by construction");
        let bv: &[f64; NR] = bstrip[p * NR..p * NR + NR]
            .try_into()
            .expect("slice is exactly NR long by construction");
        for j in 0..NR {
            let bj = bv[j];
            for i in 0..MR {
                acc[j][i] += av[i] * bj;
            }
        }
    }
}

/// Reference (naive) DGEMM used by tests and as a fallback oracle.
pub fn dgemm_naive(
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    c: &mut MatMut<'_>,
) {
    let m = c.rows();
    let n = c.cols();
    let k = match transa {
        Trans::No => a.cols(),
        Trans::Yes => a.rows(),
    };
    for j in 0..n {
        for i in 0..m {
            let mut s = 0.0;
            for p in 0..k {
                let aip = match transa {
                    Trans::No => a.get(i, p),
                    Trans::Yes => a.get(p, i),
                };
                let bpj = match transb {
                    Trans::No => b.get(p, j),
                    Trans::Yes => b.get(j, p),
                };
                s += aip * bpj;
            }
            let old = c.get(i, j);
            c.set(i, j, alpha * s + beta * old);
        }
    }
}

/// Triangular solve with multiple right-hand sides:
/// `B <- alpha * op(T)^{-1} B` (Side::Left) or `B <- alpha * B * op(T)^{-1}`
/// (Side::Right), where `T` is triangular per `uplo`/`diag`.
pub fn dtrsm(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    alpha: f64,
    t: MatRef<'_>,
    b: &mut MatMut<'_>,
) {
    let dim = match side {
        Side::Left => b.rows(),
        Side::Right => b.cols(),
    };
    assert_eq!(t.rows(), dim, "dtrsm: T dimension mismatch");
    assert_eq!(t.cols(), dim, "dtrsm: T must be square");
    if b.is_empty() {
        return;
    }
    if alpha != 1.0 {
        for j in 0..b.cols() {
            for v in b.col_mut(j) {
                *v *= alpha;
            }
        }
    }
    dtrsm_rec(
        side,
        uplo,
        trans,
        diag,
        t,
        &mut b.submatrix_mut(0, 0, b.rows(), b.cols()),
    );
}

/// Recursion cutoff for the triangular dimension.
const TRSM_BASE: usize = 32;

fn dtrsm_rec(side: Side, uplo: Uplo, trans: Trans, diag: Diag, t: MatRef<'_>, b: &mut MatMut<'_>) {
    let n = t.rows();
    if n == 0 {
        return;
    }
    if n <= TRSM_BASE {
        dtrsm_unblocked(side, uplo, trans, diag, t, b);
        return;
    }
    let h = n / 2;
    let t11 = t.submatrix(0, 0, h, h);
    let t22 = t.submatrix(h, h, n - h, n - h);
    // The off-diagonal block of the triangle.
    let (t21, t12) = (
        if matches!(uplo, Uplo::Lower) {
            Some(t.submatrix(h, 0, n - h, h))
        } else {
            None
        },
        if matches!(uplo, Uplo::Upper) {
            Some(t.submatrix(0, h, h, n - h))
        } else {
            None
        },
    );
    match side {
        Side::Left => {
            let nrhs = b.cols();
            let (mut b1, mut b2) = b.submatrix_mut(0, 0, n, nrhs).split_at_row(h);
            // Effective operator is op(T); "lower" behaviour means the first
            // block row is solved first.
            let lower_first = matches!(
                (uplo, trans),
                (Uplo::Lower, Trans::No) | (Uplo::Upper, Trans::Yes)
            );
            if lower_first {
                dtrsm_rec(side, uplo, trans, diag, t11, &mut b1);
                // B2 -= op(T)21 * X1.
                match (uplo, trans) {
                    (Uplo::Lower, Trans::No) => dgemm(
                        Trans::No,
                        Trans::No,
                        -1.0,
                        t21.expect("off-diagonal block present when n > 1"),
                        b1.as_ref(),
                        1.0,
                        &mut b2,
                    ),
                    (Uplo::Upper, Trans::Yes) => dgemm(
                        Trans::Yes,
                        Trans::No,
                        -1.0,
                        t12.expect("off-diagonal block present when n > 1"),
                        b1.as_ref(),
                        1.0,
                        &mut b2,
                    ),
                    _ => unreachable!(),
                }
                dtrsm_rec(side, uplo, trans, diag, t22, &mut b2);
            } else {
                dtrsm_rec(side, uplo, trans, diag, t22, &mut b2);
                // B1 -= op(T)12 * X2.
                match (uplo, trans) {
                    (Uplo::Upper, Trans::No) => dgemm(
                        Trans::No,
                        Trans::No,
                        -1.0,
                        t12.expect("off-diagonal block present when n > 1"),
                        b2.as_ref(),
                        1.0,
                        &mut b1,
                    ),
                    (Uplo::Lower, Trans::Yes) => dgemm(
                        Trans::Yes,
                        Trans::No,
                        -1.0,
                        t21.expect("off-diagonal block present when n > 1"),
                        b2.as_ref(),
                        1.0,
                        &mut b1,
                    ),
                    _ => unreachable!(),
                }
                dtrsm_rec(side, uplo, trans, diag, t11, &mut b1);
            }
        }
        Side::Right => {
            let nrows = b.rows();
            let (mut b1, mut b2) = b.submatrix_mut(0, 0, nrows, n).split_at_col(h);
            // X * op(T) = B. "first" = the block column solved first.
            let first_is_left = matches!(
                (uplo, trans),
                (Uplo::Upper, Trans::No) | (Uplo::Lower, Trans::Yes)
            );
            if first_is_left {
                dtrsm_rec(side, uplo, trans, diag, t11, &mut b1);
                // B2 -= X1 * op(T)12.
                match (uplo, trans) {
                    (Uplo::Upper, Trans::No) => dgemm(
                        Trans::No,
                        Trans::No,
                        -1.0,
                        b1.as_ref(),
                        t12.expect("off-diagonal block present when n > 1"),
                        1.0,
                        &mut b2,
                    ),
                    (Uplo::Lower, Trans::Yes) => dgemm(
                        Trans::No,
                        Trans::Yes,
                        -1.0,
                        b1.as_ref(),
                        t21.expect("off-diagonal block present when n > 1"),
                        1.0,
                        &mut b2,
                    ),
                    _ => unreachable!(),
                }
                dtrsm_rec(side, uplo, trans, diag, t22, &mut b2);
            } else {
                dtrsm_rec(side, uplo, trans, diag, t22, &mut b2);
                // B1 -= X2 * op(T)21.
                match (uplo, trans) {
                    (Uplo::Lower, Trans::No) => dgemm(
                        Trans::No,
                        Trans::No,
                        -1.0,
                        b2.as_ref(),
                        t21.expect("off-diagonal block present when n > 1"),
                        1.0,
                        &mut b1,
                    ),
                    (Uplo::Upper, Trans::Yes) => dgemm(
                        Trans::No,
                        Trans::Yes,
                        -1.0,
                        b2.as_ref(),
                        t12.expect("off-diagonal block present when n > 1"),
                        1.0,
                        &mut b1,
                    ),
                    _ => unreachable!(),
                }
                dtrsm_rec(side, uplo, trans, diag, t11, &mut b1);
            }
        }
    }
}

/// Unblocked triangular solve used as the recursion base case.
fn dtrsm_unblocked(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    t: MatRef<'_>,
    b: &mut MatMut<'_>,
) {
    let n = t.rows();
    match side {
        Side::Left => {
            // Solve op(T) X = B column by column of B.
            let forward = matches!(
                (uplo, trans),
                (Uplo::Lower, Trans::No) | (Uplo::Upper, Trans::Yes)
            );
            for j in 0..b.cols() {
                let col = b.col_mut(j);
                if forward {
                    for r in 0..n {
                        let mut s = col[r];
                        for p in 0..r {
                            let trp = match trans {
                                Trans::No => t.get(r, p),
                                Trans::Yes => t.get(p, r),
                            };
                            s -= trp * col[p];
                        }
                        col[r] = match diag {
                            Diag::Unit => s,
                            Diag::NonUnit => s / t.get(r, r),
                        };
                    }
                } else {
                    for r in (0..n).rev() {
                        let mut s = col[r];
                        for p in r + 1..n {
                            let trp = match trans {
                                Trans::No => t.get(r, p),
                                Trans::Yes => t.get(p, r),
                            };
                            s -= trp * col[p];
                        }
                        col[r] = match diag {
                            Diag::Unit => s,
                            Diag::NonUnit => s / t.get(r, r),
                        };
                    }
                }
            }
        }
        Side::Right => {
            // Solve X op(T) = B row-block at a time: process B's columns in
            // dependency order; column c of X depends on previously solved
            // columns.
            let forward = matches!(
                (uplo, trans),
                (Uplo::Upper, Trans::No) | (Uplo::Lower, Trans::Yes)
            );
            let m = b.rows();
            let order: Vec<usize> = if forward {
                (0..n).collect()
            } else {
                (0..n).rev().collect()
            };
            for &c in &order {
                // X[:,c] = (B[:,c] - sum_{p solved before} X[:,p] * op(T)[p,c]) / op(T)[c,c]
                let tcc = match diag {
                    Diag::Unit => 1.0,
                    Diag::NonUnit => t.get(c, c),
                };
                let deps: Vec<usize> = order.iter().take_while(|&&p| p != c).copied().collect();
                for &p in &deps {
                    let tpc = match trans {
                        Trans::No => t.get(p, c),
                        Trans::Yes => t.get(c, p),
                    };
                    if tpc != 0.0 {
                        // B[:,c] -= X[:,p] * tpc; split to satisfy borrows.
                        for i in 0..m {
                            let xp = b.get(i, p);
                            let v = b.get(i, c) - xp * tpc;
                            b.set(i, c, v);
                        }
                    }
                }
                if matches!(diag, Diag::NonUnit) {
                    for v in b.col_mut(c) {
                        *v /= tcc;
                    }
                }
            }
        }
    }
}
