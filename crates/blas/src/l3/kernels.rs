//! Register microkernels and run-level kernel selection for GEMM.
//!
//! The GotoBLAS macro loop in [`crate::l3`] funnels every flop through one
//! `MR x NR` register tile; this module supplies that tile in two
//! accumulation semantics, for both pipeline precisions:
//!
//! * **scalar** — the portable 8x4 mul-then-add kernel. It is the
//!   bit-exactness oracle: its results are identical on every platform and
//!   to every earlier release of this crate.
//! * **simd** — explicitly vectorized FMA kernels behind runtime feature
//!   detection. For `f64`: AVX2+FMA 8x6 on `x86_64`, NEON 8x4 on `aarch64`.
//!   For `f32`: AVX2+FMA 16x6 on `x86_64` (8 lanes per YMM doubles the
//!   per-register width, and doubling MR to 16 keeps the same
//!   two-loads-six-broadcasts-twelve-FMAs schedule as the f64 tile at
//!   twice the flops), NEON 8x4 on `aarch64`. FMA contracts
//!   `a*b + acc` into one rounding, so simd results differ from scalar
//!   results in the last bits — *within* a kernel every result is still
//!   deterministic and independent of thread count.
//!
//! Because the two semantics round differently, the kernel is a **per-run
//! choice**, resolved once per process from the `RHPL_KERNEL` environment
//! variable (`scalar` | `simd` | `auto`, default `auto`) or the `rhpl
//! --kernel` flag, and then frozen: mixing kernels inside one factorization
//! would break the bitwise schedule-equivalence and replay guarantees the
//! test suite leans on. `auto` picks simd when the CPU supports it and
//! falls back to scalar otherwise (as does an explicit `simd` request on
//! unsupported hardware, keeping `RHPL_KERNEL=simd` portable in CI). An
//! *unparseable* value is a configuration error, not a fallback: the CLI
//! validates `RHPL_KERNEL` pre-flight, and a library-only entry fails fast
//! with the same message rather than silently running a different kernel
//! than the one requested.
//!
//! The per-precision shapes and entry points are reached through
//! [`crate::Element::micro_shape`] / [`crate::Element::micro`]; the
//! selection machinery here stays precision-agnostic (one `RHPL_KERNEL`
//! choice governs both element types in a mixed-precision process).

use crate::Element;
use std::sync::OnceLock;

/// Accumulation semantics of the active microkernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// Portable mul-then-add 8x4 tile; bit-identical everywhere.
    Scalar,
    /// Runtime-detected FMA tile (AVX2+FMA or NEON; shape per precision).
    Simd,
}

/// A user-facing kernel request, before hardware resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum KernelSel {
    /// Use simd when the hardware supports it, scalar otherwise.
    #[default]
    Auto,
    /// Force the portable scalar kernel.
    Scalar,
    /// Request the simd kernel (resolves to scalar on unsupported CPUs).
    Simd,
}

impl std::str::FromStr for KernelSel {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, ()> {
        match s {
            "auto" => Ok(KernelSel::Auto),
            "scalar" => Ok(KernelSel::Scalar),
            "simd" => Ok(KernelSel::Simd),
            _ => Err(()),
        }
    }
}

/// A resolved microkernel: its semantics plus the f64 register-tile shape
/// (the historical default precision; per-precision shapes come from
/// [`Kernel::mr_for`] / [`Kernel::nr_for`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Kernel {
    kind: KernelKind,
    mr: usize,
    nr: usize,
}

/// Largest `MR * NR` over all kernels and precisions — the stack
/// accumulator size (the f32 AVX2 tile is 16x6).
pub(crate) const MAX_TILE: usize = 96;

/// `(mr, nr)` of the f64 tile for each accumulation semantics.
pub(crate) fn shape_f64(kind: KernelKind) -> (usize, usize) {
    match kind {
        KernelKind::Scalar => (8, 4),
        KernelKind::Simd => {
            if cfg!(target_arch = "x86_64") {
                (8, 6)
            } else {
                (8, 4)
            }
        }
    }
}

/// `(mr, nr)` of the f32 tile for each accumulation semantics.
pub(crate) fn shape_f32(kind: KernelKind) -> (usize, usize) {
    match kind {
        KernelKind::Scalar => (8, 4),
        KernelKind::Simd => {
            if cfg!(target_arch = "x86_64") {
                (16, 6)
            } else {
                (8, 4)
            }
        }
    }
}

impl Kernel {
    /// The portable scalar kernel (always available).
    pub fn scalar() -> Kernel {
        let (mr, nr) = shape_f64(KernelKind::Scalar);
        Kernel {
            kind: KernelKind::Scalar,
            mr,
            nr,
        }
    }

    /// The vectorized kernel for this CPU, if one exists.
    pub fn simd() -> Option<Kernel> {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                let (mr, nr) = shape_f64(KernelKind::Simd);
                return Some(Kernel {
                    kind: KernelKind::Simd,
                    mr,
                    nr,
                });
            }
            None
        }
        #[cfg(target_arch = "aarch64")]
        {
            // NEON (incl. 2x f64 / 4x f32 FMA) is baseline on aarch64.
            let (mr, nr) = shape_f64(KernelKind::Simd);
            Some(Kernel {
                kind: KernelKind::Simd,
                mr,
                nr,
            })
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            None
        }
    }

    /// Resolves a request against the hardware.
    pub fn resolve(sel: KernelSel) -> Kernel {
        match sel {
            KernelSel::Scalar => Kernel::scalar(),
            KernelSel::Auto | KernelSel::Simd => Kernel::simd().unwrap_or_else(Kernel::scalar),
        }
    }

    /// Accumulation semantics.
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// f64 register-tile rows; packed-A strips are this tall (zero-padded).
    pub fn mr(&self) -> usize {
        self.mr
    }

    /// f64 register-tile columns; packed-B strips are this wide
    /// (zero-padded).
    pub fn nr(&self) -> usize {
        self.nr
    }

    /// Register-tile rows for precision `E`.
    pub fn mr_for<E: Element>(&self) -> usize {
        E::micro_shape(self.kind).0
    }

    /// Register-tile columns for precision `E`.
    pub fn nr_for<E: Element>(&self) -> usize {
        E::micro_shape(self.kind).1
    }

    /// Short name for logs, JSON and the CLI.
    pub fn name(&self) -> &'static str {
        match self.kind {
            KernelKind::Scalar => "scalar",
            KernelKind::Simd => "simd",
        }
    }

    /// Human description including the tile shape and ISA.
    pub fn describe(&self) -> String {
        match self.kind {
            KernelKind::Scalar => format!("scalar {}x{} (portable mul+add)", self.mr, self.nr),
            KernelKind::Simd => {
                let isa = if cfg!(target_arch = "x86_64") {
                    "avx2+fma"
                } else {
                    "neon"
                };
                let (mr32, nr32) = shape_f32(self.kind);
                format!(
                    "simd {}x{} f64 / {}x{} f32 ({isa})",
                    self.mr, self.nr, mr32, nr32
                )
            }
        }
    }

    /// Runs the register tile: `acc[j*mr + i] = sum_p a[p*mr + i] *
    /// b[p*nr + j]` over `kc` depth steps, overwriting `acc` (callers pass
    /// a zeroed slice of exactly `mr * nr` elements for this precision's
    /// tile shape).
    #[inline]
    pub(crate) fn micro<E: Element>(&self, kc: usize, astrip: &[E], bstrip: &[E], acc: &mut [E]) {
        let (mr, nr) = E::micro_shape(self.kind);
        debug_assert!(astrip.len() >= kc * mr);
        debug_assert!(bstrip.len() >= kc * nr);
        debug_assert_eq!(acc.len(), mr * nr);
        E::micro(self.kind, kc, astrip, bstrip, acc)
    }
}

/// f64 microkernel entry for the [`Element`] dispatch.
#[inline]
pub(crate) fn micro_f64(
    kind: KernelKind,
    kc: usize,
    astrip: &[f64],
    bstrip: &[f64],
    acc: &mut [f64],
) {
    match kind {
        KernelKind::Scalar => micro_scalar::<f64, 8, 4>(kc, astrip, bstrip, acc),
        KernelKind::Simd => micro_simd_f64(kc, astrip, bstrip, acc),
    }
}

/// f32 microkernel entry for the [`Element`] dispatch.
#[inline]
pub(crate) fn micro_f32(
    kind: KernelKind,
    kc: usize,
    astrip: &[f32],
    bstrip: &[f32],
    acc: &mut [f32],
) {
    match kind {
        KernelKind::Scalar => micro_scalar::<f32, 8, 4>(kc, astrip, bstrip, acc),
        KernelKind::Simd => micro_simd_f32(kc, astrip, bstrip, acc),
    }
}

/// The portable `MR x NR` register tile, kept bit-identical to the original
/// serial implementation: plain mul-then-add in (p, j, i) order.
#[inline(always)]
fn micro_scalar<E: Element, const MR: usize, const NR: usize>(
    kc: usize,
    astrip: &[E],
    bstrip: &[E],
    acc: &mut [E],
) {
    for p in 0..kc {
        let av: &[E; MR] = astrip[p * MR..p * MR + MR]
            .try_into()
            .expect("slice is exactly MR long by construction");
        let bv: &[E; NR] = bstrip[p * NR..p * NR + NR]
            .try_into()
            .expect("slice is exactly NR long by construction");
        for j in 0..NR {
            let bj = bv[j];
            for i in 0..MR {
                acc[j * MR + i] += av[i] * bj;
            }
        }
    }
}

/// Dispatches to the vectorized f64 tile for this architecture. Only
/// reachable through a [`Kernel`] whose construction verified the ISA.
#[inline]
fn micro_simd_f64(kc: usize, astrip: &[f64], bstrip: &[f64], acc: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `Kernel::simd()` is the only constructor of a Simd kernel
        // on x86_64 and it requires `is_x86_feature_detected!` to confirm
        // the avx2 and fma target features before handing one out, so the
        // `#[target_feature(enable = "avx2,fma")]` contract holds here.
        unsafe { x86::micro_8x6_avx2fma(kc, astrip, bstrip, acc) }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // SAFETY: the neon target feature is baseline on every aarch64
        // target rustc supports, so the `#[target_feature(enable = "neon")]`
        // contract of the kernel is unconditionally met.
        unsafe { aarch64::micro_8x4_neon(kc, astrip, bstrip, acc) }
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        // `Kernel::simd()` returns None here, so this is unreachable; fall
        // back to scalar semantics rather than aborting.
        micro_scalar::<f64, 8, 4>(kc, astrip, bstrip, acc)
    }
}

/// Dispatches to the vectorized f32 tile for this architecture. Only
/// reachable through a [`Kernel`] whose construction verified the ISA.
#[inline]
fn micro_simd_f32(kc: usize, astrip: &[f32], bstrip: &[f32], acc: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: as in `micro_simd_f64` — a Simd kernel only exists after
        // runtime detection of avx2+fma.
        unsafe { x86::micro_16x6_avx2fma_f32(kc, astrip, bstrip, acc) }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // SAFETY: neon is baseline on aarch64.
        unsafe { aarch64::micro_8x4_neon_f32(kc, astrip, bstrip, acc) }
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        micro_scalar::<f32, 8, 4>(kc, astrip, bstrip, acc)
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::{
        __m256, __m256d, _mm256_fmadd_pd, _mm256_fmadd_ps, _mm256_loadu_pd, _mm256_loadu_ps,
        _mm256_set1_pd, _mm256_set1_ps, _mm256_setzero_pd, _mm256_setzero_ps, _mm256_storeu_pd,
        _mm256_storeu_ps,
    };

    /// AVX2+FMA `8x6` f64 register tile: twelve 4-lane accumulators (rows
    /// split into two YMM halves, one pair per column) fed by broadcast B
    /// values, leaving three YMM registers for the A loads and the
    /// broadcast.
    ///
    /// # Safety
    /// The caller must have verified at runtime that the CPU supports the
    /// `avx2` and `fma` target features.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn micro_8x6_avx2fma(
        kc: usize,
        astrip: &[f64],
        bstrip: &[f64],
        acc: &mut [f64],
    ) {
        const MR: usize = 8;
        const NR: usize = 6;
        assert!(astrip.len() >= kc * MR);
        assert!(bstrip.len() >= kc * NR);
        assert_eq!(acc.len(), MR * NR);
        let mut c: [__m256d; 2 * NR] = [_mm256_setzero_pd(); 2 * NR];
        for p in 0..kc {
            let arow = &astrip[p * MR..p * MR + MR];
            // SAFETY: avx2+fma — `arow` has 8 readable f64 lanes.
            let a0 = unsafe { _mm256_loadu_pd(arow.as_ptr()) };
            // SAFETY: avx2+fma — lanes 4..8 of the same MR-tall strip.
            let a1 = unsafe { _mm256_loadu_pd(arow[4..].as_ptr()) };
            let brow = &bstrip[p * NR..p * NR + NR];
            for j in 0..NR {
                let bj = _mm256_set1_pd(brow[j]);
                c[2 * j] = _mm256_fmadd_pd(a0, bj, c[2 * j]);
                c[2 * j + 1] = _mm256_fmadd_pd(a1, bj, c[2 * j + 1]);
            }
        }
        for j in 0..NR {
            // SAFETY: avx2+fma — `acc[j*MR..]` has >= 4 writable lanes.
            unsafe { _mm256_storeu_pd(acc[j * MR..].as_mut_ptr(), c[2 * j]) };
            // SAFETY: avx2+fma — second half of column j, inside MR*NR.
            unsafe { _mm256_storeu_pd(acc[j * MR + 4..].as_mut_ptr(), c[2 * j + 1]) };
        }
    }

    /// AVX2+FMA `16x6` f32 register tile: twelve 8-lane accumulators (rows
    /// split into two YMM halves, one pair per column) — the same
    /// two-loads, six-broadcasts, twelve-FMAs port schedule per depth step
    /// as the f64 `8x6` tile, with every register twice as wide. An `8x12`
    /// shape issues the same twelve FMAs but needs twelve B broadcasts per
    /// step, saturating the load ports and halving throughput in practice.
    ///
    /// # Safety
    /// The caller must have verified at runtime that the CPU supports the
    /// `avx2` and `fma` target features.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn micro_16x6_avx2fma_f32(
        kc: usize,
        astrip: &[f32],
        bstrip: &[f32],
        acc: &mut [f32],
    ) {
        const MR: usize = 16;
        const NR: usize = 6;
        assert!(astrip.len() >= kc * MR);
        assert!(bstrip.len() >= kc * NR);
        assert_eq!(acc.len(), MR * NR);
        let mut c: [__m256; 2 * NR] = [_mm256_setzero_ps(); 2 * NR];
        for p in 0..kc {
            let arow = &astrip[p * MR..p * MR + MR];
            // SAFETY: avx2+fma — `arow` has 16 readable f32 lanes.
            let a0 = unsafe { _mm256_loadu_ps(arow.as_ptr()) };
            // SAFETY: avx2+fma — lanes 8..16 of the same MR-tall strip.
            let a1 = unsafe { _mm256_loadu_ps(arow[8..].as_ptr()) };
            let brow = &bstrip[p * NR..p * NR + NR];
            for j in 0..NR {
                let bj = _mm256_set1_ps(brow[j]);
                c[2 * j] = _mm256_fmadd_ps(a0, bj, c[2 * j]);
                c[2 * j + 1] = _mm256_fmadd_ps(a1, bj, c[2 * j + 1]);
            }
        }
        for j in 0..NR {
            // SAFETY: avx2+fma — `acc[j*MR..]` has 8 writable lanes inside
            // the MR*NR accumulator (length asserted above).
            unsafe { _mm256_storeu_ps(acc[j * MR..].as_mut_ptr(), c[2 * j]) };
            // SAFETY: avx2+fma — second half of column j, inside MR*NR.
            unsafe { _mm256_storeu_ps(acc[j * MR + 8..].as_mut_ptr(), c[2 * j + 1]) };
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod aarch64 {
    use core::arch::aarch64::{
        float32x4_t, float64x2_t, vdupq_n_f32, vdupq_n_f64, vfmaq_f32, vfmaq_f64, vld1q_f32,
        vld1q_f64, vst1q_f32, vst1q_f64,
    };

    /// NEON `8x4` f64 register tile: sixteen 2-lane accumulators (rows
    /// split into four Q-register halves, one quartet per column).
    ///
    /// # Safety
    /// The caller must be running on a target with the `neon` target
    /// feature (baseline on every supported aarch64 target).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn micro_8x4_neon(
        kc: usize,
        astrip: &[f64],
        bstrip: &[f64],
        acc: &mut [f64],
    ) {
        const MR: usize = 8;
        const NR: usize = 4;
        assert!(astrip.len() >= kc * MR);
        assert!(bstrip.len() >= kc * NR);
        assert_eq!(acc.len(), MR * NR);
        let mut c: [float64x2_t; 4 * NR] = [vdupq_n_f64(0.0); 4 * NR];
        for p in 0..kc {
            let arow = &astrip[p * MR..p * MR + MR];
            let mut a = [vdupq_n_f64(0.0); 4];
            for (h, slot) in a.iter_mut().enumerate() {
                // SAFETY: neon — lanes 2h..2h+2 of the 8-tall packed strip.
                *slot = unsafe { vld1q_f64(arow[2 * h..].as_ptr()) };
            }
            let brow = &bstrip[p * NR..p * NR + NR];
            for j in 0..NR {
                let bj = vdupq_n_f64(brow[j]);
                for h in 0..4 {
                    c[4 * j + h] = vfmaq_f64(c[4 * j + h], a[h], bj);
                }
            }
        }
        for j in 0..NR {
            for h in 0..4 {
                // SAFETY: neon — `acc[j*MR + 2h..]` has 2 writable lanes
                // inside the MR*NR accumulator (length asserted above).
                unsafe { vst1q_f64(acc[j * MR + 2 * h..].as_mut_ptr(), c[4 * j + h]) };
            }
        }
    }

    /// NEON `8x4` f32 register tile: eight 4-lane accumulators (rows split
    /// into two Q-register halves, one pair per column) — the same loop
    /// structure as the f64 tile at twice the lane width.
    ///
    /// # Safety
    /// The caller must be running on a target with the `neon` target
    /// feature (baseline on every supported aarch64 target).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn micro_8x4_neon_f32(
        kc: usize,
        astrip: &[f32],
        bstrip: &[f32],
        acc: &mut [f32],
    ) {
        const MR: usize = 8;
        const NR: usize = 4;
        assert!(astrip.len() >= kc * MR);
        assert!(bstrip.len() >= kc * NR);
        assert_eq!(acc.len(), MR * NR);
        let mut c: [float32x4_t; 2 * NR] = [vdupq_n_f32(0.0); 2 * NR];
        for p in 0..kc {
            let arow = &astrip[p * MR..p * MR + MR];
            // SAFETY: neon — lanes 0..4 of the 8-tall packed strip.
            let a0 = unsafe { vld1q_f32(arow.as_ptr()) };
            // SAFETY: neon — lanes 4..8 of the same strip.
            let a1 = unsafe { vld1q_f32(arow[4..].as_ptr()) };
            let brow = &bstrip[p * NR..p * NR + NR];
            for j in 0..NR {
                let bj = vdupq_n_f32(brow[j]);
                c[2 * j] = vfmaq_f32(c[2 * j], a0, bj);
                c[2 * j + 1] = vfmaq_f32(c[2 * j + 1], a1, bj);
            }
        }
        for j in 0..NR {
            // SAFETY: neon — `acc[j*MR..]` has 4 writable lanes inside the
            // MR*NR accumulator (length asserted above).
            unsafe { vst1q_f32(acc[j * MR..].as_mut_ptr(), c[2 * j]) };
            // SAFETY: neon — second half of column j, inside MR*NR.
            unsafe { vst1q_f32(acc[j * MR + 4..].as_mut_ptr(), c[2 * j + 1]) };
        }
    }
}

static ACTIVE: OnceLock<Kernel> = OnceLock::new();

/// The process-wide kernel, resolved on first use from `RHPL_KERNEL`
/// (`scalar` | `simd` | `auto`; unset means `auto`). An unrecognized value
/// is a configuration error: the process fails fast with the offending
/// value rather than silently benchmarking a kernel nobody asked for (the
/// CLI validates `RHPL_KERNEL` pre-flight and turns the same message into
/// a clean exit).
pub fn active() -> Kernel {
    *ACTIVE.get_or_init(|| Kernel::resolve(sel_from_env()))
}

/// Overrides the process-wide kernel (e.g. from `rhpl --kernel`). Must run
/// before the first [`active`] call to take effect — the kernel freezes at
/// first use so one run never mixes accumulation semantics. Returns the
/// kernel actually in effect.
pub fn select(sel: KernelSel) -> Kernel {
    *ACTIVE.get_or_init(|| Kernel::resolve(sel))
}

fn sel_from_env() -> KernelSel {
    match std::env::var("RHPL_KERNEL") {
        Ok(v) => match v.parse() {
            Ok(sel) => sel,
            // xtask-allow: no-panic — config fail-fast (the CLI validates pre-flight; a library entry must not silently fall back to a different kernel)
            Err(()) => panic!("invalid RHPL_KERNEL={v:?}: expected one of auto, scalar, simd"),
        },
        Err(_) => KernelSel::Auto,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sel_parses_known_names_only() {
        assert_eq!("scalar".parse(), Ok(KernelSel::Scalar));
        assert_eq!("simd".parse(), Ok(KernelSel::Simd));
        assert_eq!("auto".parse(), Ok(KernelSel::Auto));
        assert_eq!("AVX".parse::<KernelSel>(), Err(()));
        assert_eq!("".parse::<KernelSel>(), Err(()));
    }

    #[test]
    fn scalar_resolution_never_depends_on_hardware() {
        let k = Kernel::resolve(KernelSel::Scalar);
        assert_eq!(k.kind(), KernelKind::Scalar);
        assert_eq!((k.mr(), k.nr()), (8, 4));
        assert_eq!((k.mr_for::<f32>(), k.nr_for::<f32>()), (8, 4));
        assert_eq!(k.name(), "scalar");
    }

    #[test]
    fn simd_request_falls_back_cleanly() {
        // On hardware without a simd kernel the request resolves to scalar;
        // with one, shapes must fit the shared accumulator.
        let k = Kernel::resolve(KernelSel::Simd);
        assert!(k.mr() * k.nr() <= MAX_TILE);
        assert!(k.mr_for::<f32>() * k.nr_for::<f32>() <= MAX_TILE);
        match Kernel::simd() {
            Some(s) => assert_eq!(k, s),
            None => assert_eq!(k, Kernel::scalar()),
        }
    }

    #[test]
    fn micro_tiles_agree_with_reference_sum() {
        // Both kernels must compute the exact dot products on small integer
        // data (no rounding at these magnitudes, so scalar == simd here).
        for kern in [Kernel::scalar()]
            .into_iter()
            .chain(Kernel::simd())
            .collect::<Vec<_>>()
        {
            let (mr, nr, kc) = (kern.mr(), kern.nr(), 7usize);
            let a: Vec<f64> = (0..kc * mr).map(|x| ((x % 11) as f64) - 5.0).collect();
            let b: Vec<f64> = (0..kc * nr).map(|x| ((x % 7) as f64) - 3.0).collect();
            let mut acc = vec![0.0f64; mr * nr];
            kern.micro(kc, &a, &b, &mut acc);
            for j in 0..nr {
                for i in 0..mr {
                    let want: f64 = (0..kc).map(|p| a[p * mr + i] * b[p * nr + j]).sum();
                    assert_eq!(acc[j * mr + i], want, "kernel {} ({i},{j})", kern.name());
                }
            }
        }
    }

    #[test]
    fn f32_micro_tiles_agree_with_reference_sum() {
        for kern in [Kernel::scalar()]
            .into_iter()
            .chain(Kernel::simd())
            .collect::<Vec<_>>()
        {
            let (mr, nr) = (kern.mr_for::<f32>(), kern.nr_for::<f32>());
            let kc = 7usize;
            let a: Vec<f32> = (0..kc * mr).map(|x| ((x % 11) as f32) - 5.0).collect();
            let b: Vec<f32> = (0..kc * nr).map(|x| ((x % 7) as f32) - 3.0).collect();
            let mut acc = vec![0.0f32; mr * nr];
            kern.micro(kc, &a, &b, &mut acc);
            for j in 0..nr {
                for i in 0..mr {
                    let want: f32 = (0..kc).map(|p| a[p * mr + i] * b[p * nr + j]).sum();
                    assert_eq!(acc[j * mr + i], want, "kernel {} ({i},{j})", kern.name());
                }
            }
        }
    }
}
