//! Register microkernels and run-level kernel selection for DGEMM.
//!
//! The GotoBLAS macro loop in [`crate::l3`] funnels every flop through one
//! `MR x NR` register tile; this module supplies that tile in two
//! accumulation semantics:
//!
//! * **scalar** — the portable 8x4 mul-then-add kernel. It is the
//!   bit-exactness oracle: its results are identical on every platform and
//!   to every earlier release of this crate.
//! * **simd** — explicitly vectorized FMA kernels behind runtime feature
//!   detection: AVX2+FMA 8x6 on `x86_64`, NEON 8x4 on `aarch64`. FMA
//!   contracts `a*b + acc` into one rounding, so simd results differ from
//!   scalar results in the last bits — *within* a kernel every result is
//!   still deterministic and independent of thread count.
//!
//! Because the two semantics round differently, the kernel is a **per-run
//! choice**, resolved once per process from the `RHPL_KERNEL` environment
//! variable (`scalar` | `simd` | `auto`, default `auto`) or the `rhpl
//! --kernel` flag, and then frozen: mixing kernels inside one factorization
//! would break the bitwise schedule-equivalence and replay guarantees the
//! test suite leans on. `auto` picks simd when the CPU supports it and
//! falls back to scalar otherwise (as does an explicit `simd` request on
//! unsupported hardware, keeping `RHPL_KERNEL=simd` portable in CI).

use std::sync::OnceLock;

/// Accumulation semantics of the active microkernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// Portable mul-then-add 8x4 tile; bit-identical everywhere.
    Scalar,
    /// Runtime-detected FMA tile (AVX2+FMA 8x6 or NEON 8x4).
    Simd,
}

/// A user-facing kernel request, before hardware resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum KernelSel {
    /// Use simd when the hardware supports it, scalar otherwise.
    #[default]
    Auto,
    /// Force the portable scalar kernel.
    Scalar,
    /// Request the simd kernel (resolves to scalar on unsupported CPUs).
    Simd,
}

impl std::str::FromStr for KernelSel {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, ()> {
        match s {
            "auto" => Ok(KernelSel::Auto),
            "scalar" => Ok(KernelSel::Scalar),
            "simd" => Ok(KernelSel::Simd),
            _ => Err(()),
        }
    }
}

/// A resolved microkernel: its semantics plus the register-tile shape the
/// packing routines must honor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Kernel {
    kind: KernelKind,
    mr: usize,
    nr: usize,
}

/// Largest `MR * NR` over all kernels — the stack accumulator size.
pub(crate) const MAX_TILE: usize = 48;

impl Kernel {
    /// The portable scalar kernel (always available).
    pub fn scalar() -> Kernel {
        Kernel {
            kind: KernelKind::Scalar,
            mr: 8,
            nr: 4,
        }
    }

    /// The vectorized kernel for this CPU, if one exists.
    pub fn simd() -> Option<Kernel> {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                return Some(Kernel {
                    kind: KernelKind::Simd,
                    mr: 8,
                    nr: 6,
                });
            }
            None
        }
        #[cfg(target_arch = "aarch64")]
        {
            // NEON (incl. 2x f64 FMA) is baseline on aarch64.
            Some(Kernel {
                kind: KernelKind::Simd,
                mr: 8,
                nr: 4,
            })
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            None
        }
    }

    /// Resolves a request against the hardware.
    pub fn resolve(sel: KernelSel) -> Kernel {
        match sel {
            KernelSel::Scalar => Kernel::scalar(),
            KernelSel::Auto | KernelSel::Simd => Kernel::simd().unwrap_or_else(Kernel::scalar),
        }
    }

    /// Accumulation semantics.
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// Register-tile rows; packed-A strips are this tall (zero-padded).
    pub fn mr(&self) -> usize {
        self.mr
    }

    /// Register-tile columns; packed-B strips are this wide (zero-padded).
    pub fn nr(&self) -> usize {
        self.nr
    }

    /// Short name for logs, JSON and the CLI.
    pub fn name(&self) -> &'static str {
        match self.kind {
            KernelKind::Scalar => "scalar",
            KernelKind::Simd => "simd",
        }
    }

    /// Human description including the tile shape and ISA.
    pub fn describe(&self) -> String {
        match self.kind {
            KernelKind::Scalar => format!("scalar {}x{} (portable mul+add)", self.mr, self.nr),
            KernelKind::Simd => {
                let isa = if cfg!(target_arch = "x86_64") {
                    "avx2+fma"
                } else {
                    "neon"
                };
                format!("simd {}x{} ({isa})", self.mr, self.nr)
            }
        }
    }

    /// Runs the register tile: `acc[j*mr + i] = sum_p a[p*mr + i] *
    /// b[p*nr + j]` over `kc` depth steps, overwriting `acc` (callers pass
    /// a zeroed slice of exactly `mr * nr` elements).
    #[inline]
    pub(crate) fn micro(&self, kc: usize, astrip: &[f64], bstrip: &[f64], acc: &mut [f64]) {
        debug_assert!(astrip.len() >= kc * self.mr);
        debug_assert!(bstrip.len() >= kc * self.nr);
        debug_assert_eq!(acc.len(), self.mr * self.nr);
        match self.kind {
            KernelKind::Scalar => micro_scalar_8x4(kc, astrip, bstrip, acc),
            KernelKind::Simd => micro_simd(kc, astrip, bstrip, acc),
        }
    }
}

/// The portable `8x4` register tile, kept bit-identical to the original
/// serial implementation: plain mul-then-add in (p, j, i) order.
#[inline(always)]
fn micro_scalar_8x4(kc: usize, astrip: &[f64], bstrip: &[f64], acc: &mut [f64]) {
    const MR: usize = 8;
    const NR: usize = 4;
    for p in 0..kc {
        let av: &[f64; MR] = astrip[p * MR..p * MR + MR]
            .try_into()
            .expect("slice is exactly MR long by construction");
        let bv: &[f64; NR] = bstrip[p * NR..p * NR + NR]
            .try_into()
            .expect("slice is exactly NR long by construction");
        for j in 0..NR {
            let bj = bv[j];
            for i in 0..MR {
                acc[j * MR + i] += av[i] * bj;
            }
        }
    }
}

/// Dispatches to the vectorized tile for this architecture. Only reachable
/// through a [`Kernel`] whose construction verified the ISA is present.
#[inline]
fn micro_simd(kc: usize, astrip: &[f64], bstrip: &[f64], acc: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `Kernel::simd()` is the only constructor of a Simd kernel
        // on x86_64 and it requires `is_x86_feature_detected!` to confirm
        // the avx2 and fma target features before handing one out, so the
        // `#[target_feature(enable = "avx2,fma")]` contract holds here.
        unsafe { x86::micro_8x6_avx2fma(kc, astrip, bstrip, acc) }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // SAFETY: the neon target feature is baseline on every aarch64
        // target rustc supports, so the `#[target_feature(enable = "neon")]`
        // contract of the kernel is unconditionally met.
        unsafe { aarch64::micro_8x4_neon(kc, astrip, bstrip, acc) }
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        // `Kernel::simd()` returns None here, so this is unreachable; fall
        // back to scalar semantics rather than aborting.
        micro_scalar_8x4(kc, astrip, bstrip, acc)
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::{
        __m256d, _mm256_fmadd_pd, _mm256_loadu_pd, _mm256_set1_pd, _mm256_setzero_pd,
        _mm256_storeu_pd,
    };

    /// AVX2+FMA `8x6` register tile: twelve 4-lane accumulators (rows split
    /// into two YMM halves, one pair per column) fed by broadcast B values,
    /// leaving three YMM registers for the A loads and the broadcast.
    ///
    /// # Safety
    /// The caller must have verified at runtime that the CPU supports the
    /// `avx2` and `fma` target features.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn micro_8x6_avx2fma(
        kc: usize,
        astrip: &[f64],
        bstrip: &[f64],
        acc: &mut [f64],
    ) {
        const MR: usize = 8;
        const NR: usize = 6;
        assert!(astrip.len() >= kc * MR);
        assert!(bstrip.len() >= kc * NR);
        assert_eq!(acc.len(), MR * NR);
        let mut c: [__m256d; 2 * NR] = [_mm256_setzero_pd(); 2 * NR];
        for p in 0..kc {
            let arow = &astrip[p * MR..p * MR + MR];
            // SAFETY: avx2+fma — `arow` has 8 readable f64 lanes.
            let a0 = unsafe { _mm256_loadu_pd(arow.as_ptr()) };
            // SAFETY: avx2+fma — lanes 4..8 of the same MR-tall strip.
            let a1 = unsafe { _mm256_loadu_pd(arow[4..].as_ptr()) };
            let brow = &bstrip[p * NR..p * NR + NR];
            for j in 0..NR {
                let bj = _mm256_set1_pd(brow[j]);
                c[2 * j] = _mm256_fmadd_pd(a0, bj, c[2 * j]);
                c[2 * j + 1] = _mm256_fmadd_pd(a1, bj, c[2 * j + 1]);
            }
        }
        for j in 0..NR {
            // SAFETY: avx2+fma — `acc[j*MR..]` has >= 4 writable lanes.
            unsafe { _mm256_storeu_pd(acc[j * MR..].as_mut_ptr(), c[2 * j]) };
            // SAFETY: avx2+fma — second half of column j, inside MR*NR.
            unsafe { _mm256_storeu_pd(acc[j * MR + 4..].as_mut_ptr(), c[2 * j + 1]) };
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod aarch64 {
    use core::arch::aarch64::{float64x2_t, vdupq_n_f64, vfmaq_f64, vld1q_f64, vst1q_f64};

    /// NEON `8x4` register tile: sixteen 2-lane accumulators (rows split
    /// into four Q-register halves, one quartet per column).
    ///
    /// # Safety
    /// The caller must be running on a target with the `neon` target
    /// feature (baseline on every supported aarch64 target).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn micro_8x4_neon(
        kc: usize,
        astrip: &[f64],
        bstrip: &[f64],
        acc: &mut [f64],
    ) {
        const MR: usize = 8;
        const NR: usize = 4;
        assert!(astrip.len() >= kc * MR);
        assert!(bstrip.len() >= kc * NR);
        assert_eq!(acc.len(), MR * NR);
        let mut c: [float64x2_t; 4 * NR] = [vdupq_n_f64(0.0); 4 * NR];
        for p in 0..kc {
            let arow = &astrip[p * MR..p * MR + MR];
            let mut a = [vdupq_n_f64(0.0); 4];
            for (h, slot) in a.iter_mut().enumerate() {
                // SAFETY: neon — lanes 2h..2h+2 of the 8-tall packed strip.
                *slot = unsafe { vld1q_f64(arow[2 * h..].as_ptr()) };
            }
            let brow = &bstrip[p * NR..p * NR + NR];
            for j in 0..NR {
                let bj = vdupq_n_f64(brow[j]);
                for h in 0..4 {
                    c[4 * j + h] = vfmaq_f64(c[4 * j + h], a[h], bj);
                }
            }
        }
        for j in 0..NR {
            for h in 0..4 {
                // SAFETY: neon — `acc[j*MR + 2h..]` has 2 writable lanes
                // inside the MR*NR accumulator (length asserted above).
                unsafe { vst1q_f64(acc[j * MR + 2 * h..].as_mut_ptr(), c[4 * j + h]) };
            }
        }
    }
}

static ACTIVE: OnceLock<Kernel> = OnceLock::new();

/// The process-wide kernel, resolved on first use from `RHPL_KERNEL`
/// (`scalar` | `simd` | `auto`; unset or unrecognized values mean `auto`).
pub fn active() -> Kernel {
    *ACTIVE.get_or_init(|| Kernel::resolve(sel_from_env()))
}

/// Overrides the process-wide kernel (e.g. from `rhpl --kernel`). Must run
/// before the first [`active`] call to take effect — the kernel freezes at
/// first use so one run never mixes accumulation semantics. Returns the
/// kernel actually in effect.
pub fn select(sel: KernelSel) -> Kernel {
    *ACTIVE.get_or_init(|| Kernel::resolve(sel))
}

fn sel_from_env() -> KernelSel {
    std::env::var("RHPL_KERNEL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sel_parses_known_names_only() {
        assert_eq!("scalar".parse(), Ok(KernelSel::Scalar));
        assert_eq!("simd".parse(), Ok(KernelSel::Simd));
        assert_eq!("auto".parse(), Ok(KernelSel::Auto));
        assert_eq!("AVX".parse::<KernelSel>(), Err(()));
        assert_eq!("".parse::<KernelSel>(), Err(()));
    }

    #[test]
    fn scalar_resolution_never_depends_on_hardware() {
        let k = Kernel::resolve(KernelSel::Scalar);
        assert_eq!(k.kind(), KernelKind::Scalar);
        assert_eq!((k.mr(), k.nr()), (8, 4));
        assert_eq!(k.name(), "scalar");
    }

    #[test]
    fn simd_request_falls_back_cleanly() {
        // On hardware without a simd kernel the request resolves to scalar;
        // with one, shapes must fit the shared accumulator.
        let k = Kernel::resolve(KernelSel::Simd);
        assert!(k.mr() * k.nr() <= MAX_TILE);
        match Kernel::simd() {
            Some(s) => assert_eq!(k, s),
            None => assert_eq!(k, Kernel::scalar()),
        }
    }

    #[test]
    fn micro_tiles_agree_with_reference_sum() {
        // Both kernels must compute the exact dot products on small integer
        // data (no rounding at these magnitudes, so scalar == simd here).
        for kern in [Kernel::scalar()]
            .into_iter()
            .chain(Kernel::simd())
            .collect::<Vec<_>>()
        {
            let (mr, nr, kc) = (kern.mr(), kern.nr(), 7usize);
            let a: Vec<f64> = (0..kc * mr).map(|x| ((x % 11) as f64) - 5.0).collect();
            let b: Vec<f64> = (0..kc * nr).map(|x| ((x % 7) as f64) - 3.0).collect();
            let mut acc = vec![0.0f64; mr * nr];
            kern.micro(kc, &a, &b, &mut acc);
            for j in 0..nr {
                for i in 0..mr {
                    let want: f64 = (0..kc).map(|p| a[p * mr + i] * b[p * nr + j]).sum();
                    assert_eq!(acc[j * mr + i], want, "kernel {} ({i},{j})", kern.name());
                }
            }
        }
    }
}
