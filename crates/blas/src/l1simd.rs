//! Vectorized level-1 kernels for the panel factorization (FACT) hot loops:
//! pivot-search argmax, reciprocal-free column scaling, and the fused
//! multiply-free rank-1 row kernels — in both pipeline precisions.
//!
//! Unlike the FMA GEMM microkernels in [`crate::l3::kernels`], every kernel
//! here is **bitwise identical** to its scalar oracle by construction, so the
//! factorization trace (`seq_hash`) and the replay/checkpoint guarantees are
//! preserved across `RHPL_KERNEL=scalar|simd` in f64 and f32 alike:
//!
//! * `argmax_abs` uses only comparisons (`_CMP_GT_OQ` / `vcgtq_f64` match the
//!   scalar `>` exactly, including NaN rejection), with first-index-wins tie
//!   breaking folded out of the lanes at the end;
//! * `dscal_inv` divides (`vdivpd` is correctly rounded, identical to the
//!   scalar `/`) instead of multiplying by a reciprocal;
//! * `axpy_sub` / `axpy_add` round the product and the sum separately
//!   (mul-then-add, **no FMA**), which is elementwise the scalar sequence.
//!
//! Dispatch goes through the same per-process [`crate::kernels::active`]
//! selection as GEMM, so `RHPL_KERNEL` / `--kernel` govern both, and through
//! the [`Element`] hooks so generic FACT code never names a precision. The
//! `*_f64` / `*_f32` pairs are the monomorphic backing entry points those
//! hooks call.

use crate::kernels::{self, KernelKind};
use crate::Element;

/// Index and absolute value of the first maximal `|x[i]|`, exactly as the
/// scalar loop `if x[i].abs() > best` computes it: ties keep the earlier
/// index, NaN entries never win, and an empty (or all-NaN) slice returns
/// `(usize::MAX, E::NEG_INFINITY)`.
pub fn argmax_abs<E: Element>(x: &[E]) -> (usize, E) {
    E::l1_argmax_abs(kernels::active().kind(), x)
}

/// `x[i] /= pivot` for all `i` — division, not reciprocal multiplication,
/// so the simd path rounds identically to the scalar path.
pub fn dscal_inv<E: Element>(pivot: E, x: &mut [E]) {
    E::l1_scal_inv(kernels::active().kind(), pivot, x)
}

/// `y[i] -= alpha * x[i]` (rank-1 DGER row kernel), mul-then-sub with no
/// FMA contraction so both paths round twice per element.
pub fn axpy_sub<E: Element>(alpha: E, x: &[E], y: &mut [E]) {
    debug_assert!(y.len() <= x.len());
    E::l1_axpy_sub(kernels::active().kind(), alpha, x, y)
}

/// `y[i] += alpha * x[i]` (lazy column-update accumulator), mul-then-add
/// with no FMA contraction.
pub fn axpy_add<E: Element>(alpha: E, x: &[E], y: &mut [E]) {
    debug_assert!(y.len() <= x.len());
    E::l1_axpy_add(kernels::active().kind(), alpha, x, y)
}

/// `y[i] -= x[i]` — the apply step of the lazy column update.
pub fn dsub<E: Element>(y: &mut [E], x: &[E]) {
    debug_assert!(y.len() <= x.len());
    E::l1_sub(kernels::active().kind(), y, x)
}

// --------------------------------------------- per-precision entry points
//
// Monomorphic backing functions for the `Element` l1 hooks: each picks the
// scalar or per-arch simd body for an explicit kernel kind.

macro_rules! kind_entry {
    ($name:ident, $ty:ty, $scalar:ident, $simd:ident,
     ($($arg:ident: $aty:ty),*) -> $ret:ty) => {
        #[inline]
        pub(crate) fn $name(kind: KernelKind, $($arg: $aty),*) -> $ret {
            match kind {
                KernelKind::Scalar => $scalar($($arg),*),
                KernelKind::Simd => $simd($($arg),*),
            }
        }
    };
}

kind_entry!(argmax_abs_f64, f64, argmax_abs_scalar, argmax_abs_simd_f64,
    (x: &[f64]) -> (usize, f64));
kind_entry!(scal_inv_f64, f64, dscal_inv_scalar, dscal_inv_simd_f64,
    (pivot: f64, x: &mut [f64]) -> ());
kind_entry!(axpy_sub_f64, f64, axpy_sub_scalar, axpy_sub_simd_f64,
    (alpha: f64, x: &[f64], y: &mut [f64]) -> ());
kind_entry!(axpy_add_f64, f64, axpy_add_scalar, axpy_add_simd_f64,
    (alpha: f64, x: &[f64], y: &mut [f64]) -> ());
kind_entry!(sub_f64, f64, dsub_scalar, dsub_simd_f64,
    (y: &mut [f64], x: &[f64]) -> ());

kind_entry!(argmax_abs_f32, f32, argmax_abs_scalar, argmax_abs_simd_f32,
    (x: &[f32]) -> (usize, f32));
kind_entry!(scal_inv_f32, f32, dscal_inv_scalar, dscal_inv_simd_f32,
    (pivot: f32, x: &mut [f32]) -> ());
kind_entry!(axpy_sub_f32, f32, axpy_sub_scalar, axpy_sub_simd_f32,
    (alpha: f32, x: &[f32], y: &mut [f32]) -> ());
kind_entry!(axpy_add_f32, f32, axpy_add_scalar, axpy_add_simd_f32,
    (alpha: f32, x: &[f32], y: &mut [f32]) -> ());
kind_entry!(sub_f32, f32, dsub_scalar, dsub_simd_f32,
    (y: &mut [f32], x: &[f32]) -> ());

// ---------------------------------------------------------------- scalar
//
// Generic scalar oracles: one body per kernel, monomorphized per precision.

fn argmax_abs_scalar<E: Element>(x: &[E]) -> (usize, E) {
    let mut best_v = E::NEG_INFINITY;
    let mut best_i = usize::MAX;
    for (i, &v) in x.iter().enumerate() {
        let av = v.abs();
        if av > best_v {
            best_v = av;
            best_i = i;
        }
    }
    (best_i, best_v)
}

fn dscal_inv_scalar<E: Element>(pivot: E, x: &mut [E]) {
    for v in x {
        *v /= pivot;
    }
}

fn axpy_sub_scalar<E: Element>(alpha: E, x: &[E], y: &mut [E]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi -= alpha * xi;
    }
}

fn axpy_add_scalar<E: Element>(alpha: E, x: &[E], y: &mut [E]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

fn dsub_scalar<E: Element>(y: &mut [E], x: &[E]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi -= xi;
    }
}

// ------------------------------------------------------------- dispatch

/// The per-arch simd entry points. Only reachable through a [`kernels::Kernel`]
/// whose construction verified the ISA (mirrors `l3::kernels::micro_simd`);
/// non-simd architectures fall back to the scalar body.
macro_rules! simd_entry {
    ($name:ident, $x86:ident, $neon:ident, $scalar:ident,
     ($($arg:ident: $ty:ty),*) -> $ret:ty) => {
        #[inline]
        fn $name($($arg: $ty),*) -> $ret {
            #[cfg(target_arch = "x86_64")]
            {
                // SAFETY: `Kernel::simd()` is the only constructor of a Simd
                // kernel on x86_64 and it requires `is_x86_feature_detected!`
                // to confirm the avx2 target feature before handing one out,
                // so the `#[target_feature(enable = "avx2")]` contract holds.
                unsafe { x86::$x86($($arg),*) }
            }
            #[cfg(target_arch = "aarch64")]
            {
                // SAFETY: the neon target feature is baseline on every
                // aarch64 target rustc supports, so the
                // `#[target_feature(enable = "neon")]` contract is met.
                unsafe { aarch64::$neon($($arg),*) }
            }
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            {
                $scalar($($arg),*)
            }
        }
    };
}

simd_entry!(argmax_abs_simd_f64, argmax_abs_avx2, argmax_abs_neon, argmax_abs_scalar,
    (x: &[f64]) -> (usize, f64));
simd_entry!(dscal_inv_simd_f64, dscal_inv_avx2, dscal_inv_neon, dscal_inv_scalar,
    (pivot: f64, x: &mut [f64]) -> ());
simd_entry!(axpy_sub_simd_f64, axpy_sub_avx2, axpy_sub_neon, axpy_sub_scalar,
    (alpha: f64, x: &[f64], y: &mut [f64]) -> ());
simd_entry!(axpy_add_simd_f64, axpy_add_avx2, axpy_add_neon, axpy_add_scalar,
    (alpha: f64, x: &[f64], y: &mut [f64]) -> ());
simd_entry!(dsub_simd_f64, dsub_avx2, dsub_neon, dsub_scalar,
    (y: &mut [f64], x: &[f64]) -> ());

simd_entry!(argmax_abs_simd_f32, argmax_abs_avx2_f32, argmax_abs_neon_f32, argmax_abs_scalar,
    (x: &[f32]) -> (usize, f32));
simd_entry!(dscal_inv_simd_f32, dscal_inv_avx2_f32, dscal_inv_neon_f32, dscal_inv_scalar,
    (pivot: f32, x: &mut [f32]) -> ());
simd_entry!(axpy_sub_simd_f32, axpy_sub_avx2_f32, axpy_sub_neon_f32, axpy_sub_scalar,
    (alpha: f32, x: &[f32], y: &mut [f32]) -> ());
simd_entry!(axpy_add_simd_f32, axpy_add_avx2_f32, axpy_add_neon_f32, axpy_add_scalar,
    (alpha: f32, x: &[f32], y: &mut [f32]) -> ());
simd_entry!(dsub_simd_f32, dsub_avx2_f32, dsub_neon_f32, dsub_scalar,
    (y: &mut [f32], x: &[f32]) -> ());

/// Largest slice length whose lane indices stay exactly representable in an
/// f32 index register (integers <= 2^24 are exact in f32). Longer argmax
/// inputs take the scalar path — never hit in practice, the pipeline's
/// column heights are far smaller.
const F32_IDX_EXACT: usize = 1 << 24;

/// Folds per-lane `(value, index)` argmax candidates into the scalar
/// first-index-wins answer. Lanes that never won keep the `NEG_INFINITY`
/// sentinel (no data element has `|v| == -inf`) and are skipped, which is
/// exactly the scalar loop never updating from its initial state. Index
/// lanes hold small exact integers in either precision (`F32_IDX_EXACT`
/// guards the f32 path), so `to_f64 as usize` is lossless.
fn fold_lanes<E: Element>(vs: &[E], is: &[E], best_v: &mut E, best_i: &mut usize) {
    for (&v, &fi) in vs.iter().zip(is) {
        if v == E::NEG_INFINITY {
            continue;
        }
        let i = fi.to_f64() as usize;
        if v > *best_v || (v == *best_v && i < *best_i) {
            *best_v = v;
            *best_i = i;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::{
        __m256, __m256d, _mm256_add_pd, _mm256_add_ps, _mm256_and_pd, _mm256_and_ps,
        _mm256_blendv_pd, _mm256_blendv_ps, _mm256_castsi256_pd, _mm256_castsi256_ps,
        _mm256_cmp_pd, _mm256_cmp_ps, _mm256_div_pd, _mm256_div_ps, _mm256_loadu_pd,
        _mm256_loadu_ps, _mm256_mul_pd, _mm256_mul_ps, _mm256_set1_epi32, _mm256_set1_epi64x,
        _mm256_set1_pd, _mm256_set1_ps, _mm256_setr_pd, _mm256_setr_ps, _mm256_storeu_pd,
        _mm256_storeu_ps, _mm256_sub_pd, _mm256_sub_ps, _CMP_GT_OQ,
    };

    /// Clears the sign bit of each lane — bit-identical to `f64::abs`
    /// (NaN payloads pass through, `-0.0` becomes `+0.0`).
    #[inline]
    fn abs_mask() -> __m256d {
        // SAFETY: avx2 — pure lane-constant construction.
        let bits = unsafe { _mm256_set1_epi64x(0x7fff_ffff_ffff_ffff_u64 as i64) };
        // SAFETY: avx2 — lane-wise bit cast.
        unsafe { _mm256_castsi256_pd(bits) }
    }

    /// f32 twin of [`abs_mask`]: clears the sign bit of each of 8 lanes,
    /// bit-identical to `f32::abs`.
    #[inline]
    fn abs_mask_ps() -> __m256 {
        // SAFETY: avx2 — pure lane-constant construction.
        let bits = unsafe { _mm256_set1_epi32(0x7fff_ffff_u32 as i32) };
        // SAFETY: avx2 — lane-wise bit cast.
        unsafe { _mm256_castsi256_ps(bits) }
    }

    /// 4-lane pivot search. Each lane tracks a strict-`>` running max over
    /// its index class; the cross-lane/tail fold restores the global
    /// first-index-wins order. `_CMP_GT_OQ` is the ordered quiet `>` — NaN
    /// compares false exactly like the scalar `av > best_v`.
    ///
    /// # Safety
    /// Caller must have verified the `avx2` target feature at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn argmax_abs_avx2(x: &[f64]) -> (usize, f64) {
        let n = x.len();
        let mut best_v = f64::NEG_INFINITY;
        let mut best_i = usize::MAX;
        let chunks = n / 4;
        if chunks > 0 {
            let mask = abs_mask();
            let mut bv = _mm256_set1_pd(f64::NEG_INFINITY);
            let mut bi = _mm256_set1_pd(0.0);
            let mut idx = _mm256_setr_pd(0.0, 1.0, 2.0, 3.0);
            let four = _mm256_set1_pd(4.0);
            for c in 0..chunks {
                // SAFETY: avx2 — offset `4c` is in bounds (`c < n/4`).
                let ptr = unsafe { x.as_ptr().add(4 * c) };
                // SAFETY: avx2 — lanes `4c..4c+4` are in bounds (`c < n/4`).
                let v = unsafe { _mm256_loadu_pd(ptr) };
                let av = _mm256_and_pd(v, mask);
                let gt = _mm256_cmp_pd::<_CMP_GT_OQ>(av, bv);
                bv = _mm256_blendv_pd(bv, av, gt);
                bi = _mm256_blendv_pd(bi, idx, gt);
                idx = _mm256_add_pd(idx, four);
            }
            let mut vs = [0.0f64; 4];
            let mut is = [0.0f64; 4];
            // SAFETY: avx2 — both stack arrays have 4 writable lanes.
            unsafe { _mm256_storeu_pd(vs.as_mut_ptr(), bv) };
            // SAFETY: avx2 — as above.
            unsafe { _mm256_storeu_pd(is.as_mut_ptr(), bi) };
            super::fold_lanes(&vs, &is, &mut best_v, &mut best_i);
        }
        for i in 4 * chunks..n {
            let av = x[i].abs();
            if av > best_v {
                best_v = av;
                best_i = i;
            }
        }
        (best_i, best_v)
    }

    /// 8-lane f32 pivot search; see the f64 twin for the lane/fold argument.
    /// Index lanes are f32, exact for slices below `F32_IDX_EXACT` — longer
    /// inputs fall back to the (bitwise-identical) scalar loop.
    ///
    /// # Safety
    /// Caller must have verified the `avx2` target feature at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn argmax_abs_avx2_f32(x: &[f32]) -> (usize, f32) {
        let n = x.len();
        if n >= super::F32_IDX_EXACT {
            return super::argmax_abs_scalar(x);
        }
        let mut best_v = f32::NEG_INFINITY;
        let mut best_i = usize::MAX;
        let chunks = n / 8;
        if chunks > 0 {
            let mask = abs_mask_ps();
            let mut bv = _mm256_set1_ps(f32::NEG_INFINITY);
            let mut bi = _mm256_set1_ps(0.0);
            let mut idx = _mm256_setr_ps(0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0);
            let eight = _mm256_set1_ps(8.0);
            for c in 0..chunks {
                // SAFETY: avx2 — offset `8c` is in bounds (`c < n/8`).
                let ptr = unsafe { x.as_ptr().add(8 * c) };
                // SAFETY: avx2 — lanes `8c..8c+8` are in bounds (`c < n/8`).
                let v = unsafe { _mm256_loadu_ps(ptr) };
                let av = _mm256_and_ps(v, mask);
                let gt = _mm256_cmp_ps::<_CMP_GT_OQ>(av, bv);
                bv = _mm256_blendv_ps(bv, av, gt);
                bi = _mm256_blendv_ps(bi, idx, gt);
                idx = _mm256_add_ps(idx, eight);
            }
            let mut vs = [0.0f32; 8];
            let mut is = [0.0f32; 8];
            // SAFETY: avx2 — both stack arrays have 8 writable lanes.
            unsafe { _mm256_storeu_ps(vs.as_mut_ptr(), bv) };
            // SAFETY: avx2 — as above.
            unsafe { _mm256_storeu_ps(is.as_mut_ptr(), bi) };
            super::fold_lanes(&vs, &is, &mut best_v, &mut best_i);
        }
        for i in 8 * chunks..n {
            let av = x[i].abs();
            if av > best_v {
                best_v = av;
                best_i = i;
            }
        }
        (best_i, best_v)
    }

    /// # Safety
    /// Caller must have verified the `avx2` target feature at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dscal_inv_avx2(pivot: f64, x: &mut [f64]) {
        let n = x.len();
        let p = _mm256_set1_pd(pivot);
        let chunks = n / 4;
        for c in 0..chunks {
            // SAFETY: avx2 — offset `4c` is in bounds (`c < n/4`).
            let ptr = unsafe { x.as_mut_ptr().add(4 * c) };
            // SAFETY: avx2 — lanes `4c..4c+4` are in bounds (`c < n/4`).
            let v = unsafe { _mm256_loadu_pd(ptr) };
            // `vdivpd` is correctly rounded: bit-identical to the scalar `/`.
            let q = _mm256_div_pd(v, p);
            // SAFETY: avx2 — same in-bounds lanes, writable.
            unsafe { _mm256_storeu_pd(ptr, q) };
        }
        for v in &mut x[4 * chunks..] {
            *v /= pivot;
        }
    }

    /// # Safety
    /// Caller must have verified the `avx2` target feature at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dscal_inv_avx2_f32(pivot: f32, x: &mut [f32]) {
        let n = x.len();
        let p = _mm256_set1_ps(pivot);
        let chunks = n / 8;
        for c in 0..chunks {
            // SAFETY: avx2 — offset `8c` is in bounds (`c < n/8`).
            let ptr = unsafe { x.as_mut_ptr().add(8 * c) };
            // SAFETY: avx2 — lanes `8c..8c+8` are in bounds (`c < n/8`).
            let v = unsafe { _mm256_loadu_ps(ptr) };
            // `vdivps` is correctly rounded: bit-identical to the scalar `/`.
            let q = _mm256_div_ps(v, p);
            // SAFETY: avx2 — same in-bounds lanes, writable.
            unsafe { _mm256_storeu_ps(ptr, q) };
        }
        for v in &mut x[8 * chunks..] {
            *v /= pivot;
        }
    }

    /// # Safety
    /// Caller must have verified the `avx2` target feature at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_sub_avx2(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = y.len().min(x.len());
        let a = _mm256_set1_pd(alpha);
        let chunks = n / 4;
        for c in 0..chunks {
            // SAFETY: avx2 — offset `4c` is within both slices.
            let xptr = unsafe { x.as_ptr().add(4 * c) };
            // SAFETY: avx2 — lanes `4c..4c+4` are within both slices.
            let xv = unsafe { _mm256_loadu_pd(xptr) };
            // SAFETY: avx2 — same in-bounds offset on the writable side.
            let yptr = unsafe { y.as_mut_ptr().add(4 * c) };
            // SAFETY: avx2 — lanes `4c..4c+4` of `y` are readable.
            let yv = unsafe { _mm256_loadu_pd(yptr) };
            // Separate mul and sub (NOT fmsub): two roundings, exactly the
            // scalar `*yi -= alpha * xi` sequence.
            let r = _mm256_sub_pd(yv, _mm256_mul_pd(a, xv));
            // SAFETY: avx2 — same writable lanes.
            unsafe { _mm256_storeu_pd(yptr, r) };
        }
        for (yi, &xi) in y[4 * chunks..n].iter_mut().zip(&x[4 * chunks..n]) {
            *yi -= alpha * xi;
        }
    }

    /// # Safety
    /// Caller must have verified the `avx2` target feature at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_sub_avx2_f32(alpha: f32, x: &[f32], y: &mut [f32]) {
        let n = y.len().min(x.len());
        let a = _mm256_set1_ps(alpha);
        let chunks = n / 8;
        for c in 0..chunks {
            // SAFETY: avx2 — offset `8c` is within both slices.
            let xptr = unsafe { x.as_ptr().add(8 * c) };
            // SAFETY: avx2 — lanes `8c..8c+8` are within both slices.
            let xv = unsafe { _mm256_loadu_ps(xptr) };
            // SAFETY: avx2 — same in-bounds offset on the writable side.
            let yptr = unsafe { y.as_mut_ptr().add(8 * c) };
            // SAFETY: avx2 — lanes `8c..8c+8` of `y` are readable.
            let yv = unsafe { _mm256_loadu_ps(yptr) };
            // Separate mul and sub (NOT fmsub): two roundings, exactly the
            // scalar `*yi -= alpha * xi` sequence.
            let r = _mm256_sub_ps(yv, _mm256_mul_ps(a, xv));
            // SAFETY: avx2 — same writable lanes.
            unsafe { _mm256_storeu_ps(yptr, r) };
        }
        for (yi, &xi) in y[8 * chunks..n].iter_mut().zip(&x[8 * chunks..n]) {
            *yi -= alpha * xi;
        }
    }

    /// # Safety
    /// Caller must have verified the `avx2` target feature at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_add_avx2(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = y.len().min(x.len());
        let a = _mm256_set1_pd(alpha);
        let chunks = n / 4;
        for c in 0..chunks {
            // SAFETY: avx2 — offset `4c` is within both slices.
            let xptr = unsafe { x.as_ptr().add(4 * c) };
            // SAFETY: avx2 — lanes `4c..4c+4` are within both slices.
            let xv = unsafe { _mm256_loadu_pd(xptr) };
            // SAFETY: avx2 — same in-bounds offset on the writable side.
            let yptr = unsafe { y.as_mut_ptr().add(4 * c) };
            // SAFETY: avx2 — lanes `4c..4c+4` of `y` are readable.
            let yv = unsafe { _mm256_loadu_pd(yptr) };
            // Separate mul and add (NOT fmadd): two roundings, matching the
            // scalar `*yi += alpha * xi`.
            let r = _mm256_add_pd(yv, _mm256_mul_pd(a, xv));
            // SAFETY: avx2 — same writable lanes.
            unsafe { _mm256_storeu_pd(yptr, r) };
        }
        for (yi, &xi) in y[4 * chunks..n].iter_mut().zip(&x[4 * chunks..n]) {
            *yi += alpha * xi;
        }
    }

    /// # Safety
    /// Caller must have verified the `avx2` target feature at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_add_avx2_f32(alpha: f32, x: &[f32], y: &mut [f32]) {
        let n = y.len().min(x.len());
        let a = _mm256_set1_ps(alpha);
        let chunks = n / 8;
        for c in 0..chunks {
            // SAFETY: avx2 — offset `8c` is within both slices.
            let xptr = unsafe { x.as_ptr().add(8 * c) };
            // SAFETY: avx2 — lanes `8c..8c+8` are within both slices.
            let xv = unsafe { _mm256_loadu_ps(xptr) };
            // SAFETY: avx2 — same in-bounds offset on the writable side.
            let yptr = unsafe { y.as_mut_ptr().add(8 * c) };
            // SAFETY: avx2 — lanes `8c..8c+8` of `y` are readable.
            let yv = unsafe { _mm256_loadu_ps(yptr) };
            // Separate mul and add (NOT fmadd): two roundings, matching the
            // scalar `*yi += alpha * xi`.
            let r = _mm256_add_ps(yv, _mm256_mul_ps(a, xv));
            // SAFETY: avx2 — same writable lanes.
            unsafe { _mm256_storeu_ps(yptr, r) };
        }
        for (yi, &xi) in y[8 * chunks..n].iter_mut().zip(&x[8 * chunks..n]) {
            *yi += alpha * xi;
        }
    }

    /// # Safety
    /// Caller must have verified the `avx2` target feature at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dsub_avx2(y: &mut [f64], x: &[f64]) {
        let n = y.len().min(x.len());
        let chunks = n / 4;
        for c in 0..chunks {
            // SAFETY: avx2 — offset `4c` is within both slices.
            let xptr = unsafe { x.as_ptr().add(4 * c) };
            // SAFETY: avx2 — lanes `4c..4c+4` are within both slices.
            let xv = unsafe { _mm256_loadu_pd(xptr) };
            // SAFETY: avx2 — same in-bounds offset on the writable side.
            let yptr = unsafe { y.as_mut_ptr().add(4 * c) };
            // SAFETY: avx2 — lanes `4c..4c+4` of `y` are readable.
            let yv = unsafe { _mm256_loadu_pd(yptr) };
            let r = _mm256_sub_pd(yv, xv);
            // SAFETY: avx2 — same writable lanes.
            unsafe { _mm256_storeu_pd(yptr, r) };
        }
        for (yi, &xi) in y[4 * chunks..n].iter_mut().zip(&x[4 * chunks..n]) {
            *yi -= xi;
        }
    }

    /// # Safety
    /// Caller must have verified the `avx2` target feature at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dsub_avx2_f32(y: &mut [f32], x: &[f32]) {
        let n = y.len().min(x.len());
        let chunks = n / 8;
        for c in 0..chunks {
            // SAFETY: avx2 — offset `8c` is within both slices.
            let xptr = unsafe { x.as_ptr().add(8 * c) };
            // SAFETY: avx2 — lanes `8c..8c+8` are within both slices.
            let xv = unsafe { _mm256_loadu_ps(xptr) };
            // SAFETY: avx2 — same in-bounds offset on the writable side.
            let yptr = unsafe { y.as_mut_ptr().add(8 * c) };
            // SAFETY: avx2 — lanes `8c..8c+8` of `y` are readable.
            let yv = unsafe { _mm256_loadu_ps(yptr) };
            let r = _mm256_sub_ps(yv, xv);
            // SAFETY: avx2 — same writable lanes.
            unsafe { _mm256_storeu_ps(yptr, r) };
        }
        for (yi, &xi) in y[8 * chunks..n].iter_mut().zip(&x[8 * chunks..n]) {
            *yi -= xi;
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod aarch64 {
    use core::arch::aarch64::{
        vabsq_f32, vabsq_f64, vaddq_f32, vaddq_f64, vbslq_f32, vbslq_f64, vcgtq_f32, vcgtq_f64,
        vdivq_f32, vdivq_f64, vdupq_n_f32, vdupq_n_f64, vld1q_f32, vld1q_f64, vmulq_f32, vmulq_f64,
        vst1q_f32, vst1q_f64, vsubq_f32, vsubq_f64,
    };

    /// 2-lane pivot search; see the avx2 twin for the lane/fold argument.
    /// `vcgtq_f64` is ordered `>` (NaN compares false, like scalar).
    ///
    /// # Safety
    /// Caller must be on a target with the `neon` feature (aarch64 baseline).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn argmax_abs_neon(x: &[f64]) -> (usize, f64) {
        let n = x.len();
        let mut best_v = f64::NEG_INFINITY;
        let mut best_i = usize::MAX;
        let chunks = n / 2;
        if chunks > 0 {
            let mut bv = vdupq_n_f64(f64::NEG_INFINITY);
            let mut bi = vdupq_n_f64(0.0);
            // SAFETY: neon — loading a 2-lane constant from the stack.
            let mut idx = unsafe { vld1q_f64([0.0f64, 1.0].as_ptr()) };
            let two = vdupq_n_f64(2.0);
            for c in 0..chunks {
                // SAFETY: neon — offset `2c` is in bounds (`c < n/2`).
                let ptr = unsafe { x.as_ptr().add(2 * c) };
                // SAFETY: neon — lanes `2c..2c+2` are in bounds (`c < n/2`).
                let v = unsafe { vld1q_f64(ptr) };
                let av = vabsq_f64(v);
                let gt = vcgtq_f64(av, bv);
                bv = vbslq_f64(gt, av, bv);
                bi = vbslq_f64(gt, idx, bi);
                idx = vaddq_f64(idx, two);
            }
            let mut vs = [0.0f64; 2];
            let mut is = [0.0f64; 2];
            // SAFETY: neon — both stack arrays have 2 writable lanes.
            unsafe { vst1q_f64(vs.as_mut_ptr(), bv) };
            // SAFETY: neon — as above.
            unsafe { vst1q_f64(is.as_mut_ptr(), bi) };
            super::fold_lanes(&vs, &is, &mut best_v, &mut best_i);
        }
        for i in 2 * chunks..n {
            let av = x[i].abs();
            if av > best_v {
                best_v = av;
                best_i = i;
            }
        }
        (best_i, best_v)
    }

    /// 4-lane f32 pivot search; see the f64 twin for the lane/fold argument.
    /// Index lanes are f32, exact for slices below `F32_IDX_EXACT` — longer
    /// inputs fall back to the (bitwise-identical) scalar loop.
    ///
    /// # Safety
    /// Caller must be on a target with the `neon` feature (aarch64 baseline).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn argmax_abs_neon_f32(x: &[f32]) -> (usize, f32) {
        let n = x.len();
        if n >= super::F32_IDX_EXACT {
            return super::argmax_abs_scalar(x);
        }
        let mut best_v = f32::NEG_INFINITY;
        let mut best_i = usize::MAX;
        let chunks = n / 4;
        if chunks > 0 {
            let mut bv = vdupq_n_f32(f32::NEG_INFINITY);
            let mut bi = vdupq_n_f32(0.0);
            // SAFETY: neon — loading a 4-lane constant from the stack.
            let mut idx = unsafe { vld1q_f32([0.0f32, 1.0, 2.0, 3.0].as_ptr()) };
            let four = vdupq_n_f32(4.0);
            for c in 0..chunks {
                // SAFETY: neon — offset `4c` is in bounds (`c < n/4`).
                let ptr = unsafe { x.as_ptr().add(4 * c) };
                // SAFETY: neon — lanes `4c..4c+4` are in bounds (`c < n/4`).
                let v = unsafe { vld1q_f32(ptr) };
                let av = vabsq_f32(v);
                let gt = vcgtq_f32(av, bv);
                bv = vbslq_f32(gt, av, bv);
                bi = vbslq_f32(gt, idx, bi);
                idx = vaddq_f32(idx, four);
            }
            let mut vs = [0.0f32; 4];
            let mut is = [0.0f32; 4];
            // SAFETY: neon — both stack arrays have 4 writable lanes.
            unsafe { vst1q_f32(vs.as_mut_ptr(), bv) };
            // SAFETY: neon — as above.
            unsafe { vst1q_f32(is.as_mut_ptr(), bi) };
            super::fold_lanes(&vs, &is, &mut best_v, &mut best_i);
        }
        for i in 4 * chunks..n {
            let av = x[i].abs();
            if av > best_v {
                best_v = av;
                best_i = i;
            }
        }
        (best_i, best_v)
    }

    /// # Safety
    /// Caller must be on a target with the `neon` feature (aarch64 baseline).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dscal_inv_neon(pivot: f64, x: &mut [f64]) {
        let n = x.len();
        let p = vdupq_n_f64(pivot);
        let chunks = n / 2;
        for c in 0..chunks {
            // SAFETY: neon — offset `2c` is in bounds (`c < n/2`).
            let ptr = unsafe { x.as_mut_ptr().add(2 * c) };
            // SAFETY: neon — lanes `2c..2c+2` are in bounds (`c < n/2`).
            let v = unsafe { vld1q_f64(ptr) };
            // `fdiv` is correctly rounded: bit-identical to the scalar `/`.
            let q = vdivq_f64(v, p);
            // SAFETY: neon — same in-bounds lanes, writable.
            unsafe { vst1q_f64(ptr, q) };
        }
        for v in &mut x[2 * chunks..] {
            *v /= pivot;
        }
    }

    /// # Safety
    /// Caller must be on a target with the `neon` feature (aarch64 baseline).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dscal_inv_neon_f32(pivot: f32, x: &mut [f32]) {
        let n = x.len();
        let p = vdupq_n_f32(pivot);
        let chunks = n / 4;
        for c in 0..chunks {
            // SAFETY: neon — offset `4c` is in bounds (`c < n/4`).
            let ptr = unsafe { x.as_mut_ptr().add(4 * c) };
            // SAFETY: neon — lanes `4c..4c+4` are in bounds (`c < n/4`).
            let v = unsafe { vld1q_f32(ptr) };
            // `fdiv` is correctly rounded: bit-identical to the scalar `/`.
            let q = vdivq_f32(v, p);
            // SAFETY: neon — same in-bounds lanes, writable.
            unsafe { vst1q_f32(ptr, q) };
        }
        for v in &mut x[4 * chunks..] {
            *v /= pivot;
        }
    }

    /// # Safety
    /// Caller must be on a target with the `neon` feature (aarch64 baseline).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn axpy_sub_neon(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = y.len().min(x.len());
        let a = vdupq_n_f64(alpha);
        let chunks = n / 2;
        for c in 0..chunks {
            // SAFETY: neon — offset `2c` is within both slices.
            let xptr = unsafe { x.as_ptr().add(2 * c) };
            // SAFETY: neon — lanes `2c..2c+2` are within both slices.
            let xv = unsafe { vld1q_f64(xptr) };
            // SAFETY: neon — same in-bounds offset on the writable side.
            let yptr = unsafe { y.as_mut_ptr().add(2 * c) };
            // SAFETY: neon — lanes `2c..2c+2` of `y` are readable.
            let yv = unsafe { vld1q_f64(yptr) };
            // Separate mul and sub (NOT vfmsq): matches scalar rounding.
            let r = vsubq_f64(yv, vmulq_f64(a, xv));
            // SAFETY: neon — same writable lanes.
            unsafe { vst1q_f64(yptr, r) };
        }
        for (yi, &xi) in y[2 * chunks..n].iter_mut().zip(&x[2 * chunks..n]) {
            *yi -= alpha * xi;
        }
    }

    /// # Safety
    /// Caller must be on a target with the `neon` feature (aarch64 baseline).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn axpy_sub_neon_f32(alpha: f32, x: &[f32], y: &mut [f32]) {
        let n = y.len().min(x.len());
        let a = vdupq_n_f32(alpha);
        let chunks = n / 4;
        for c in 0..chunks {
            // SAFETY: neon — offset `4c` is within both slices.
            let xptr = unsafe { x.as_ptr().add(4 * c) };
            // SAFETY: neon — lanes `4c..4c+4` are within both slices.
            let xv = unsafe { vld1q_f32(xptr) };
            // SAFETY: neon — same in-bounds offset on the writable side.
            let yptr = unsafe { y.as_mut_ptr().add(4 * c) };
            // SAFETY: neon — lanes `4c..4c+4` of `y` are readable.
            let yv = unsafe { vld1q_f32(yptr) };
            // Separate mul and sub (NOT vfmsq): matches scalar rounding.
            let r = vsubq_f32(yv, vmulq_f32(a, xv));
            // SAFETY: neon — same writable lanes.
            unsafe { vst1q_f32(yptr, r) };
        }
        for (yi, &xi) in y[4 * chunks..n].iter_mut().zip(&x[4 * chunks..n]) {
            *yi -= alpha * xi;
        }
    }

    /// # Safety
    /// Caller must be on a target with the `neon` feature (aarch64 baseline).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn axpy_add_neon(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = y.len().min(x.len());
        let a = vdupq_n_f64(alpha);
        let chunks = n / 2;
        for c in 0..chunks {
            // SAFETY: neon — offset `2c` is within both slices.
            let xptr = unsafe { x.as_ptr().add(2 * c) };
            // SAFETY: neon — lanes `2c..2c+2` are within both slices.
            let xv = unsafe { vld1q_f64(xptr) };
            // SAFETY: neon — same in-bounds offset on the writable side.
            let yptr = unsafe { y.as_mut_ptr().add(2 * c) };
            // SAFETY: neon — lanes `2c..2c+2` of `y` are readable.
            let yv = unsafe { vld1q_f64(yptr) };
            // Separate mul and add (NOT vfmaq): matches scalar rounding.
            let r = vaddq_f64(yv, vmulq_f64(a, xv));
            // SAFETY: neon — same writable lanes.
            unsafe { vst1q_f64(yptr, r) };
        }
        for (yi, &xi) in y[2 * chunks..n].iter_mut().zip(&x[2 * chunks..n]) {
            *yi += alpha * xi;
        }
    }

    /// # Safety
    /// Caller must be on a target with the `neon` feature (aarch64 baseline).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn axpy_add_neon_f32(alpha: f32, x: &[f32], y: &mut [f32]) {
        let n = y.len().min(x.len());
        let a = vdupq_n_f32(alpha);
        let chunks = n / 4;
        for c in 0..chunks {
            // SAFETY: neon — offset `4c` is within both slices.
            let xptr = unsafe { x.as_ptr().add(4 * c) };
            // SAFETY: neon — lanes `4c..4c+4` are within both slices.
            let xv = unsafe { vld1q_f32(xptr) };
            // SAFETY: neon — same in-bounds offset on the writable side.
            let yptr = unsafe { y.as_mut_ptr().add(4 * c) };
            // SAFETY: neon — lanes `4c..4c+4` of `y` are readable.
            let yv = unsafe { vld1q_f32(yptr) };
            // Separate mul and add (NOT vfmaq): matches scalar rounding.
            let r = vaddq_f32(yv, vmulq_f32(a, xv));
            // SAFETY: neon — same writable lanes.
            unsafe { vst1q_f32(yptr, r) };
        }
        for (yi, &xi) in y[4 * chunks..n].iter_mut().zip(&x[4 * chunks..n]) {
            *yi += alpha * xi;
        }
    }

    /// # Safety
    /// Caller must be on a target with the `neon` feature (aarch64 baseline).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dsub_neon(y: &mut [f64], x: &[f64]) {
        let n = y.len().min(x.len());
        let chunks = n / 2;
        for c in 0..chunks {
            // SAFETY: neon — offset `2c` is within both slices.
            let xptr = unsafe { x.as_ptr().add(2 * c) };
            // SAFETY: neon — lanes `2c..2c+2` are within both slices.
            let xv = unsafe { vld1q_f64(xptr) };
            // SAFETY: neon — same in-bounds offset on the writable side.
            let yptr = unsafe { y.as_mut_ptr().add(2 * c) };
            // SAFETY: neon — lanes `2c..2c+2` of `y` are readable.
            let yv = unsafe { vld1q_f64(yptr) };
            let r = vsubq_f64(yv, xv);
            // SAFETY: neon — same writable lanes.
            unsafe { vst1q_f64(yptr, r) };
        }
        for (yi, &xi) in y[2 * chunks..n].iter_mut().zip(&x[2 * chunks..n]) {
            *yi -= xi;
        }
    }

    /// # Safety
    /// Caller must be on a target with the `neon` feature (aarch64 baseline).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dsub_neon_f32(y: &mut [f32], x: &[f32]) {
        let n = y.len().min(x.len());
        let chunks = n / 4;
        for c in 0..chunks {
            // SAFETY: neon — offset `4c` is within both slices.
            let xptr = unsafe { x.as_ptr().add(4 * c) };
            // SAFETY: neon — lanes `4c..4c+4` are within both slices.
            let xv = unsafe { vld1q_f32(xptr) };
            // SAFETY: neon — same in-bounds offset on the writable side.
            let yptr = unsafe { y.as_mut_ptr().add(4 * c) };
            // SAFETY: neon — lanes `4c..4c+4` of `y` are readable.
            let yv = unsafe { vld1q_f32(yptr) };
            let r = vsubq_f32(yv, xv);
            // SAFETY: neon — same writable lanes.
            unsafe { vst1q_f32(yptr, r) };
        }
        for (yi, &xi) in y[4 * chunks..n].iter_mut().zip(&x[4 * chunks..n]) {
            *yi -= xi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Kernel;

    /// Deterministic xorshift values spanning signs, magnitudes, exact ties,
    /// signed zeros, subnormals and NaN — the cases where a simd kernel
    /// could diverge from the scalar oracle.
    fn data(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed | 1;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let v = match s % 11 {
                0 => 0.0,
                1 => -0.0,
                2 => f64::NAN,
                3 => 4.25,                    // deliberate repeated tie value
                4 => -4.25,                   // |.| ties the positive twin
                5 => f64::MIN_POSITIVE / 2.0, // subnormal
                _ => ((s >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 1e3,
            };
            // Early indices get the tie values too, so first-wins is probed.
            out.push(if i == 0 && n > 4 { 4.25 } else { v });
        }
        out
    }

    /// f32 twin of [`data`], with f32 tie values and subnormals.
    fn data_f32(n: usize, seed: u64) -> Vec<f32> {
        let mut s = seed | 1;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let v = match s % 11 {
                0 => 0.0f32,
                1 => -0.0,
                2 => f32::NAN,
                3 => 4.25,                    // deliberate repeated tie value
                4 => -4.25,                   // |.| ties the positive twin
                5 => f32::MIN_POSITIVE / 2.0, // subnormal
                _ => ((s >> 11) as f32 / (1u64 << 40) as f32 - 0.5) * 1e3,
            };
            out.push(if i == 0 && n > 4 { 4.25 } else { v });
        }
        out
    }

    fn simd_available() -> bool {
        Kernel::simd().is_some()
    }

    #[test]
    fn scalar_argmax_matches_the_plain_loop_contract() {
        assert_eq!(
            argmax_abs_scalar::<f64>(&[]),
            (usize::MAX, f64::NEG_INFINITY)
        );
        assert_eq!(
            argmax_abs_scalar(&[f64::NAN, f64::NAN]),
            (usize::MAX, f64::NEG_INFINITY)
        );
        assert_eq!(argmax_abs_scalar(&[-3.0f64, 3.0, -3.0]), (0, 3.0));
        assert_eq!(argmax_abs_scalar(&[1.0f64, -5.0, 5.0]), (1, 5.0));
        // The generic body serves f32 with the same contract.
        assert_eq!(argmax_abs_scalar(&[-3.0f32, 3.0, -3.0]), (0, 3.0f32));
        assert_eq!(
            argmax_abs_scalar::<f32>(&[f32::NAN]),
            (usize::MAX, f32::NEG_INFINITY)
        );
    }

    #[test]
    fn simd_argmax_is_bitwise_equal_to_scalar() {
        if !simd_available() {
            return;
        }
        for n in 0..=67 {
            for seed in [1u64, 42, 1234567, 987654321] {
                let x = data(n, seed);
                let (si, sv) = argmax_abs_scalar(&x);
                let (vi, vv) = argmax_abs_simd_f64(&x);
                assert_eq!((si, sv.to_bits()), (vi, vv.to_bits()), "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn simd_argmax_f32_is_bitwise_equal_to_scalar() {
        if !simd_available() {
            return;
        }
        // 0..=67 crosses several 8-lane (and 4-lane) chunk boundaries.
        for n in 0..=67 {
            for seed in [1u64, 42, 1234567, 987654321] {
                let x = data_f32(n, seed);
                let (si, sv) = argmax_abs_scalar(&x);
                let (vi, vv) = argmax_abs_simd_f32(&x);
                assert_eq!((si, sv.to_bits()), (vi, vv.to_bits()), "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn simd_row_kernels_are_bitwise_equal_to_scalar() {
        if !simd_available() {
            return;
        }
        for n in 0..=67 {
            for seed in [7u64, 99, 31337] {
                let x = data(n, seed);
                let pivot = 3.141592653589793e-2;
                let alpha = -1.7724538509055159;

                let mut ys = data(n, seed ^ 0xdead);
                let mut yv = ys.clone();
                dscal_inv_scalar(pivot, &mut ys);
                dscal_inv_simd_f64(pivot, &mut yv);
                assert_bits_eq(&ys, &yv, "dscal_inv", n, seed);

                let mut ys = data(n, seed ^ 0xbeef);
                let mut yv = ys.clone();
                axpy_sub_scalar(alpha, &x, &mut ys);
                axpy_sub_simd_f64(alpha, &x, &mut yv);
                assert_bits_eq(&ys, &yv, "axpy_sub", n, seed);

                let mut ys = data(n, seed ^ 0xf00d);
                let mut yv = ys.clone();
                axpy_add_scalar(alpha, &x, &mut ys);
                axpy_add_simd_f64(alpha, &x, &mut yv);
                assert_bits_eq(&ys, &yv, "axpy_add", n, seed);

                let mut ys = data(n, seed ^ 0xcafe);
                let mut yv = ys.clone();
                dsub_scalar(&mut ys, &x);
                dsub_simd_f64(&mut yv, &x);
                assert_bits_eq(&ys, &yv, "dsub", n, seed);
            }
        }
    }

    #[test]
    fn simd_row_kernels_f32_are_bitwise_equal_to_scalar() {
        if !simd_available() {
            return;
        }
        for n in 0..=67 {
            for seed in [7u64, 99, 31337] {
                let x = data_f32(n, seed);
                let pivot = 3.141_593e-2_f32;
                let alpha = -1.7724539f32;

                let mut ys = data_f32(n, seed ^ 0xdead);
                let mut yv = ys.clone();
                dscal_inv_scalar(pivot, &mut ys);
                dscal_inv_simd_f32(pivot, &mut yv);
                assert_bits_eq_f32(&ys, &yv, "dscal_inv", n, seed);

                let mut ys = data_f32(n, seed ^ 0xbeef);
                let mut yv = ys.clone();
                axpy_sub_scalar(alpha, &x, &mut ys);
                axpy_sub_simd_f32(alpha, &x, &mut yv);
                assert_bits_eq_f32(&ys, &yv, "axpy_sub", n, seed);

                let mut ys = data_f32(n, seed ^ 0xf00d);
                let mut yv = ys.clone();
                axpy_add_scalar(alpha, &x, &mut ys);
                axpy_add_simd_f32(alpha, &x, &mut yv);
                assert_bits_eq_f32(&ys, &yv, "axpy_add", n, seed);

                let mut ys = data_f32(n, seed ^ 0xcafe);
                let mut yv = ys.clone();
                dsub_scalar(&mut ys, &x);
                dsub_simd_f32(&mut yv, &x);
                assert_bits_eq_f32(&ys, &yv, "dsub", n, seed);
            }
        }
    }

    fn assert_bits_eq(a: &[f64], b: &[f64], what: &str, n: usize, seed: u64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what} diverged at [{i}] (n={n} seed={seed}): {x:e} vs {y:e}"
            );
        }
    }

    fn assert_bits_eq_f32(a: &[f32], b: &[f32], what: &str, n: usize, seed: u64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what} diverged at [{i}] (n={n} seed={seed}): {x:e} vs {y:e}"
            );
        }
    }

    #[test]
    fn dispatched_entry_points_agree_with_scalar_semantics() {
        // Whatever kernel `RHPL_KERNEL` froze for this process, the public
        // functions must satisfy the scalar contract (bitwise determinism
        // across kernels is proven by the direct pairs above).
        let x = data(33, 5);
        let (i, v) = argmax_abs(&x);
        assert_eq!((i, v.to_bits()), {
            let (si, sv) = argmax_abs_scalar(&x);
            (si, sv.to_bits())
        });
        let mut y = data(33, 6);
        let mut ys = y.clone();
        axpy_sub(2.5, &x, &mut y);
        axpy_sub_scalar(2.5, &x, &mut ys);
        assert_bits_eq(&ys, &y, "dispatched axpy_sub", 33, 6);
        // And the f32 instantiation of the same generic entry points.
        let x = data_f32(33, 5);
        let (i, v) = argmax_abs(&x);
        assert_eq!((i, v.to_bits()), {
            let (si, sv) = argmax_abs_scalar(&x);
            (si, sv.to_bits())
        });
        let mut y = data_f32(33, 6);
        let mut ys = y.clone();
        axpy_sub(2.5f32, &x, &mut y);
        axpy_sub_scalar(2.5f32, &x, &mut ys);
        assert_bits_eq_f32(&ys, &y, "dispatched axpy_sub f32", 33, 6);
    }
}
