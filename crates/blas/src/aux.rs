//! LAPACK-style auxiliary routines used throughout HPL: matrix copy,
//! norms, and row interchanges (DLASWP) — generic over the pipeline
//! [`Element`].

use crate::mat::{MatMut, MatRef};
use crate::Element;

/// Which norm [`dlange`] computes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Norm {
    /// Maximum absolute element value.
    Max,
    /// Maximum absolute column sum (the 1-norm).
    One,
    /// Maximum absolute row sum (the infinity norm).
    Inf,
}

/// Copies `a` into `b` element-wise. Panics on shape mismatch.
pub fn dlacpy<E: Element>(a: MatRef<'_, E>, b: &mut MatMut<'_, E>) {
    assert_eq!(a.rows(), b.rows(), "dlacpy: row mismatch");
    assert_eq!(a.cols(), b.cols(), "dlacpy: col mismatch");
    for j in 0..a.cols() {
        b.col_mut(j).copy_from_slice(a.col(j));
    }
}

/// Copies `a` transposed into `b` (`b[j][i] = a[i][j]`).
///
/// Used when assembling the broadcast `L` panel in transposed layout so the
/// trailing DGEMM reads it with stride-1 access.
pub fn dlatcpy<E: Element>(a: MatRef<'_, E>, b: &mut MatMut<'_, E>) {
    assert_eq!(a.rows(), b.cols(), "dlatcpy: shape mismatch");
    assert_eq!(a.cols(), b.rows(), "dlatcpy: shape mismatch");
    for j in 0..a.cols() {
        let col = a.col(j);
        for (i, &v) in col.iter().enumerate() {
            b.set(j, i, v);
        }
    }
}

/// Computes a norm of `a` (LAPACK DLANGE).
///
/// Accumulates in `f64` for either precision — the norms feed the residual
/// gate, which is an `f64` computation even for an f32 factorization. For
/// `E = f64` this is exactly the historical behaviour.
pub fn dlange<E: Element>(norm: Norm, a: MatRef<'_, E>) -> f64 {
    match norm {
        Norm::Max => {
            let mut m = 0.0f64;
            for j in 0..a.cols() {
                for &v in a.col(j) {
                    m = m.max(v.to_f64().abs());
                }
            }
            m
        }
        Norm::One => {
            let mut m = 0.0f64;
            for j in 0..a.cols() {
                let s: f64 = a.col(j).iter().map(|v| v.to_f64().abs()).sum();
                m = m.max(s);
            }
            m
        }
        Norm::Inf => {
            let mut sums = vec![0.0f64; a.rows()];
            for j in 0..a.cols() {
                for (s, &v) in sums.iter_mut().zip(a.col(j)) {
                    *s += v.to_f64().abs();
                }
            }
            sums.into_iter().fold(0.0, f64::max)
        }
    }
}

/// Applies a sequence of row interchanges to `a` (LAPACK DLASWP).
///
/// For `k` in `0..ipiv.len()`, swaps row `k` with row `ipiv[k]`
/// (0-based, `ipiv[k] >= k`), in order. This matches the forward
/// (`incx = 1`) direction of the reference routine.
pub fn dlaswp<E: Element>(a: &mut MatMut<'_, E>, ipiv: &[usize]) {
    for (k, &p) in ipiv.iter().enumerate() {
        assert!(p < a.rows(), "dlaswp: pivot {p} out of {} rows", a.rows());
        if p != k {
            swap_rows(a, k, p);
        }
    }
}

/// Applies the interchanges of [`dlaswp`] in reverse order, undoing them.
pub fn dlaswp_inv<E: Element>(a: &mut MatMut<'_, E>, ipiv: &[usize]) {
    for (k, &p) in ipiv.iter().enumerate().rev() {
        assert!(p < a.rows(), "dlaswp: pivot {p} out of {} rows", a.rows());
        if p != k {
            swap_rows(a, k, p);
        }
    }
}

/// Swaps rows `r1` and `r2` of `a`.
pub fn swap_rows<E: Element>(a: &mut MatMut<'_, E>, r1: usize, r2: usize) {
    if r1 == r2 {
        return;
    }
    for j in 0..a.cols() {
        let col = a.col_mut(j);
        col.swap(r1, r2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Matrix;

    #[test]
    fn dlacpy_copies() {
        let a = Matrix::from_fn(3, 2, |i, j| (i + j * 10) as f64);
        let mut b = Matrix::zeros(3, 2);
        let mut bv = b.view_mut();
        dlacpy(a.view(), &mut bv);
        assert_eq!(a, b);
    }

    #[test]
    fn dlatcpy_transposes() {
        let a = Matrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        let mut b = Matrix::zeros(2, 3);
        let mut bv = b.view_mut();
        dlatcpy(a.view(), &mut bv);
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(b.get(j, i), a.get(i, j));
            }
        }
    }

    #[test]
    fn dlange_norms() {
        // [[1, -2], [-3, 4]]
        let a = Matrix::from_vec(2, 2, vec![1.0, -3.0, -2.0, 4.0]);
        assert_eq!(dlange(Norm::Max, a.view()), 4.0);
        assert_eq!(dlange(Norm::One, a.view()), 6.0); // col sums: 4, 6
        assert_eq!(dlange(Norm::Inf, a.view()), 7.0); // row sums: 3, 7
    }

    #[test]
    fn dlange_widens_f32_to_f64() {
        let a = Matrix::<f32>::from_vec(2, 2, vec![1.0, -3.0, -2.0, 4.0]);
        assert_eq!(dlange(Norm::Max, a.view()), 4.0f64);
        assert_eq!(dlange(Norm::Inf, a.view()), 7.0f64);
    }

    #[test]
    fn dlaswp_roundtrip() {
        let orig = Matrix::from_fn(5, 3, |i, j| (i * 100 + j) as f64);
        let mut a = orig.clone();
        let ipiv = vec![2usize, 4, 2, 3, 4];
        let mut v = a.view_mut();
        dlaswp(&mut v, &ipiv);
        assert_ne!(a, orig);
        let mut v = a.view_mut();
        dlaswp_inv(&mut v, &ipiv);
        assert_eq!(a, orig);
    }

    #[test]
    fn dlaswp_matches_manual_swaps() {
        let mut a = Matrix::from_fn(4, 1, |i, _| i as f64);
        let ipiv = vec![1usize, 1, 3];
        let mut v = a.view_mut();
        dlaswp(&mut v, &ipiv);
        // swap(0,1) -> [1,0,2,3]; swap(1,1) no-op; swap(2,3) -> [1,0,3,2]
        assert_eq!(a.as_slice(), &[1.0, 0.0, 3.0, 2.0]);
    }
}
