//! Level-1 BLAS kernels on contiguous (unit-stride) vectors.
//!
//! HPL only ever applies level-1 operations to matrix *columns*, which are
//! contiguous in column-major storage, so the strided variants of the
//! reference BLAS are unnecessary here.

/// `x <- alpha * x`.
pub fn dscal(alpha: f64, x: &mut [f64]) {
    if alpha == 1.0 {
        return;
    }
    for v in x {
        *v *= alpha;
    }
}

/// `y <- alpha * x + y`. Panics if lengths differ.
pub fn daxpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "daxpy length mismatch");
    if alpha == 0.0 {
        return;
    }
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y <- x`. Panics if lengths differ.
pub fn dcopy(x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "dcopy length mismatch");
    y.copy_from_slice(x);
}

/// Swaps `x` and `y` element-wise. Panics if lengths differ.
pub fn dswap(x: &mut [f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "dswap length mismatch");
    for (xi, yi) in x.iter_mut().zip(y.iter_mut()) {
        core::mem::swap(xi, yi);
    }
}

/// Dot product `x . y`. Panics if lengths differ.
pub fn ddot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "ddot length mismatch");
    // Four partial accumulators let LLVM vectorize without changing the
    // result deterministically between runs (fixed association order).
    let mut acc = [0.0f64; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let b = c * 4;
        for l in 0..4 {
            acc[l] += x[b + l] * y[b + l];
        }
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for i in chunks * 4..x.len() {
        s += x[i] * y[i];
    }
    s
}

/// Index of the element with largest absolute value (first on ties),
/// or `None` for an empty slice. This is BLAS `idamax` (0-based).
pub fn idamax(x: &[f64]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut bestv = x[0].abs();
    for (i, &v) in x.iter().enumerate().skip(1) {
        let a = v.abs();
        if a > bestv {
            bestv = a;
            best = i;
        }
    }
    Some(best)
}

/// Sum of absolute values (BLAS `dasum`).
pub fn dasum(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Euclidean norm, computed with scaling to avoid overflow.
pub fn dnrm2(x: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &v in x {
        if v != 0.0 {
            let a = v.abs();
            if scale < a {
                let r = scale / a;
                ssq = 1.0 + ssq * r * r;
                scale = a;
            } else {
                let r = a / scale;
                ssq += r * r;
            }
        }
    }
    scale * ssq.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dscal_scales() {
        let mut x = vec![1.0, -2.0, 3.0];
        dscal(2.0, &mut x);
        assert_eq!(x, vec![2.0, -4.0, 6.0]);
    }

    #[test]
    fn dscal_alpha_one_is_noop() {
        let mut x = vec![1.5, 2.5];
        dscal(1.0, &mut x);
        assert_eq!(x, vec![1.5, 2.5]);
    }

    #[test]
    fn daxpy_accumulates() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        daxpy(-2.0, &x, &mut y);
        assert_eq!(y, vec![8.0, 16.0, 24.0]);
    }

    #[test]
    fn dswap_swaps() {
        let mut x = vec![1.0, 2.0];
        let mut y = vec![3.0, 4.0];
        dswap(&mut x, &mut y);
        assert_eq!(x, vec![3.0, 4.0]);
        assert_eq!(y, vec![1.0, 2.0]);
    }

    #[test]
    fn ddot_matches_naive() {
        let x: Vec<f64> = (0..23).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = (0..23).map(|i| (i as f64 - 11.0) * 0.25).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((ddot(&x, &y) - naive).abs() < 1e-12 * naive.abs().max(1.0));
    }

    #[test]
    fn idamax_finds_largest_magnitude() {
        assert_eq!(idamax(&[1.0, -5.0, 3.0]), Some(1));
        assert_eq!(idamax(&[]), None);
        // First index wins on ties, matching reference BLAS.
        assert_eq!(idamax(&[2.0, -2.0]), Some(0));
    }

    #[test]
    fn dnrm2_avoids_overflow() {
        let big = f64::MAX / 4.0;
        let n = dnrm2(&[big, big]);
        assert!(n.is_finite());
        assert!((n / big - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn dasum_sums_abs() {
        assert_eq!(dasum(&[1.0, -2.0, 3.0]), 6.0);
    }
}
