//! Thread-local, grow-only scratch buffers for the GEMM packing pipeline.
//!
//! The GotoBLAS loop in [`crate::l3`] repacks panels of `A` and `B` on
//! every call. Allocating those workspaces per call puts `vec![]` (and the
//! page faults behind it) on the hottest path in the whole benchmark, so
//! this module keeps one pair of pack buffers per thread, growing them
//! monotonically and never shrinking. The pool threads in `hpl-threads`
//! are persistent, so after the first trailing update every worker runs
//! allocation-free.
//!
//! `thread_local!` cannot be generic, so the precision-generic pipeline
//! gets one concrete arena per element type ([`for_f64`] / [`for_f32`]),
//! reached through the [`crate::Element`] hooks. A mixed-precision process
//! (f32 factorization + f64 refinement) therefore keeps both arenas warm
//! independently.
//!
//! The pack buffers hand out uninitialized-looking storage: callers must
//! write every element they later read (the packing routines do — padding
//! included), so the arena never zeroes on reuse.

use crate::Element;

/// Counters for one thread's arenas, for tests and diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Number of `with_pack_bufs` regions entered on this thread.
    pub calls: u64,
    /// Number of regions that had to (re)allocate a buffer.
    pub grows: u64,
    /// Current combined capacity of both buffers, in elements.
    pub capacity: usize,
}

macro_rules! arena_for {
    ($modname:ident, $ty:ty) => {
        pub(crate) mod $modname {
            use std::cell::RefCell;

            pub(crate) struct PackArena {
                pub(crate) a: Vec<$ty>,
                pub(crate) b: Vec<$ty>,
                pub(crate) calls: u64,
                pub(crate) grows: u64,
            }

            impl PackArena {
                const fn new() -> Self {
                    PackArena {
                        a: Vec::new(),
                        b: Vec::new(),
                        calls: 0,
                        grows: 0,
                    }
                }
            }

            thread_local! {
                pub(crate) static ARENA: RefCell<PackArena> =
                    const { RefCell::new(PackArena::new()) };
                /// Pool of grow-only scratch vectors (see `with_scratch`).
                /// A pool — not a fixed pair — so nested regions each check
                /// a buffer out without falling back to per-call allocation.
                static SCRATCH: RefCell<Vec<Vec<$ty>>> = const { RefCell::new(Vec::new()) };
            }

            /// Grows `buf` to at least `len` elements, reporting whether it
            /// grew.
            fn ensure(buf: &mut Vec<$ty>, len: usize) -> bool {
                if buf.len() >= len {
                    return false;
                }
                buf.resize(len, 0.0);
                true
            }

            /// Runs `f` with this thread's pack buffers sliced to
            /// `alen`/`blen` elements. Growth is monotone; a warm call of
            /// equal or smaller size performs no allocation. Falls back to
            /// fresh vectors in the (unused) reentrant case so nesting
            /// degrades to the old per-call behaviour instead of panicking.
            pub(crate) fn with_pack_bufs<R>(
                alen: usize,
                blen: usize,
                f: impl FnOnce(&mut [$ty], &mut [$ty]) -> R,
            ) -> R {
                ARENA.with(|cell| match cell.try_borrow_mut() {
                    Ok(mut arena) => {
                        let arena = &mut *arena;
                        arena.calls += 1;
                        let grew_a = ensure(&mut arena.a, alen);
                        let grew_b = ensure(&mut arena.b, blen);
                        if grew_a || grew_b {
                            arena.grows += 1;
                        }
                        f(&mut arena.a[..alen], &mut arena.b[..blen])
                    }
                    Err(_) => {
                        // Reentrant fallback only; the steady state takes
                        // the borrowed grow-only path above.
                        let mut a = vec![0.0 as $ty; alen];
                        let mut b = vec![0.0 as $ty; blen];
                        f(&mut a, &mut b)
                    }
                })
            }

            fn scratch_take(len: usize) -> Vec<$ty> {
                // The borrow is released before the caller's closure runs,
                // so nested `with_scratch` regions take further buffers
                // instead of fighting over one RefCell.
                let mut buf = SCRATCH
                    .with(|cell| cell.borrow_mut().pop())
                    .unwrap_or_default();
                ensure(&mut buf, len);
                buf[..len].fill(0.0);
                buf
            }

            fn scratch_put(buf: Vec<$ty>) {
                SCRATCH.with(|cell| cell.borrow_mut().push(buf));
            }

            /// Runs `f` with one zeroed thread-local scratch slice of `len`
            /// elements (the factorization scratch is accumulated into, so
            /// unlike the pack buffers it must start clean). Nesting is
            /// fine — each region checks its own buffer out of the pool.
            pub(crate) fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [$ty]) -> R) -> R {
                let mut buf = scratch_take(len);
                let r = f(&mut buf[..len]);
                scratch_put(buf);
                r
            }

            /// `with_scratch` with two independent zeroed slices.
            pub(crate) fn with_scratch2<R>(
                len0: usize,
                len1: usize,
                f: impl FnOnce(&mut [$ty], &mut [$ty]) -> R,
            ) -> R {
                let mut b0 = scratch_take(len0);
                let mut b1 = scratch_take(len1);
                let r = f(&mut b0[..len0], &mut b1[..len1]);
                scratch_put(b1);
                scratch_put(b0);
                r
            }
        }
    };
}

arena_for!(for_f64, f64);
arena_for!(for_f32, f32);

/// Runs `f` with this thread's pack buffers for precision `E` sliced to
/// `alen`/`blen` elements (see the module docs for the growth contract).
pub(crate) fn with_pack_bufs<E: Element, R>(
    alen: usize,
    blen: usize,
    f: impl FnOnce(&mut [E], &mut [E]) -> R,
) -> R {
    E::with_pack_bufs(alen, blen, f)
}

/// Runs `f` with one zeroed thread-local scratch slice of `len` elements.
///
/// Public counterpart of the pack-buffer arena for per-column workspaces
/// in the factorization inner loops (`hpl-core`'s `update_col` /
/// `base_factor`): grow-only pooled storage, zeroed on entry, independent
/// of the pack buffers so a kernel running inside the closure still gets
/// the warm packing path. Nesting is fine — each region checks its own
/// buffer out of the pool.
pub fn with_scratch<E: Element, R>(len: usize, f: impl FnOnce(&mut [E]) -> R) -> R {
    E::with_scratch(len, f)
}

/// [`with_scratch`] with two independent zeroed slices.
pub fn with_scratch2<E: Element, R>(
    len0: usize,
    len1: usize,
    f: impl FnOnce(&mut [E], &mut [E]) -> R,
) -> R {
    E::with_scratch2(len0, len1, f)
}

/// Snapshot of the calling thread's arena counters, summed over both
/// precisions (a single-precision run only ever touches one of them).
pub fn thread_stats() -> ArenaStats {
    let mut stats = ArenaStats::default();
    for_f64::ARENA.with(|cell| {
        let arena = cell.borrow();
        stats.calls += arena.calls;
        stats.grows += arena.grows;
        stats.capacity += arena.a.len() + arena.b.len();
    });
    for_f32::ARENA.with(|cell| {
        let arena = cell.borrow();
        stats.calls += arena.calls;
        stats.grows += arena.grows;
        stats.capacity += arena.a.len() + arena.b.len();
    });
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_calls_do_not_grow() {
        // A dedicated thread gives this test a pristine arena regardless of
        // what other tests in the process have done.
        std::thread::spawn(|| {
            let s0 = thread_stats();
            assert_eq!((s0.calls, s0.grows, s0.capacity), (0, 0, 0));
            with_pack_bufs::<f64, _>(100, 50, |a, b| {
                assert_eq!((a.len(), b.len()), (100, 50));
                a[99] = 1.0;
                b[49] = 2.0;
            });
            let s1 = thread_stats();
            assert_eq!((s1.calls, s1.grows, s1.capacity), (1, 1, 150));
            // Warm: same sizes, then smaller — zero further growth.
            with_pack_bufs::<f64, _>(100, 50, |a, b| {
                assert_eq!((a[99], b[49]), (1.0, 2.0), "storage is reused");
            });
            with_pack_bufs::<f64, _>(10, 5, |a, b| {
                assert_eq!((a.len(), b.len()), (10, 5));
            });
            let s2 = thread_stats();
            assert_eq!((s2.calls, s2.grows, s2.capacity), (3, 1, 150));
            // Larger request grows again, once.
            with_pack_bufs::<f64, _>(200, 50, |_, _| {});
            let s3 = thread_stats();
            assert_eq!((s3.calls, s3.grows, s3.capacity), (4, 2, 250));
        })
        .join()
        .expect("arena test thread panicked");
    }

    #[test]
    fn precisions_have_independent_arenas() {
        std::thread::spawn(|| {
            with_pack_bufs::<f64, _>(64, 64, |a, _| a[0] = 1.0);
            with_pack_bufs::<f32, _>(32, 32, |a, _| a[0] = 2.0);
            let s = thread_stats();
            assert_eq!((s.calls, s.grows), (2, 2));
            assert_eq!(s.capacity, 128 + 64);
            // The f32 arena growing did not disturb the warm f64 buffers.
            with_pack_bufs::<f64, _>(64, 64, |a, _| assert_eq!(a[0], 1.0));
            with_pack_bufs::<f32, _>(32, 32, |a, _| assert_eq!(a[0], 2.0));
            let s = thread_stats();
            assert_eq!(s.grows, 2, "warm calls in both precisions");
        })
        .join()
        .expect("arena test thread panicked");
    }

    #[test]
    fn scratch_is_zeroed_and_reused() {
        std::thread::spawn(|| {
            with_scratch::<f64, _>(16, |s| {
                assert!(s.iter().all(|&v| v == 0.0));
                s[3] = 9.0;
            });
            // Warm call: same storage, but zeroed again.
            with_scratch::<f64, _>(16, |s| {
                assert_eq!(s[3], 0.0, "scratch must be re-zeroed");
            });
            with_scratch2::<f64, _>(8, 4, |a, b| {
                assert_eq!((a.len(), b.len()), (8, 4));
                a[0] = 1.0;
                b[0] = 2.0;
            });
            // Nested regions each check out their own pool buffer.
            with_scratch::<f64, _>(4, |outer| {
                outer[0] = 5.0;
                with_scratch::<f64, _>(4, |inner| {
                    assert_eq!(inner[0], 0.0, "inner scratch is its own buffer");
                    inner[0] = 6.0;
                });
                assert_eq!(outer[0], 5.0, "outer scratch untouched by nesting");
                // A pack region inside a scratch closure takes the warm path.
                with_pack_bufs::<f64, _>(4, 4, |pa, _| {
                    pa[0] = 1.0;
                });
            });
            // f32 scratch follows the same contract.
            with_scratch::<f32, _>(8, |s| {
                assert!(s.iter().all(|&v| v == 0.0));
                s[0] = 3.0;
            });
            with_scratch::<f32, _>(8, |s| assert_eq!(s[0], 0.0));
        })
        .join()
        .expect("scratch test thread panicked");
    }

    #[test]
    fn reentrant_use_falls_back_to_fresh_buffers() {
        std::thread::spawn(|| {
            with_pack_bufs::<f64, _>(8, 8, |outer_a, _| {
                outer_a[0] = 7.0;
                with_pack_bufs::<f64, _>(8, 8, |inner_a, inner_b| {
                    assert_eq!(inner_a[0], 0.0, "inner buffers are fresh");
                    assert_eq!((inner_a.len(), inner_b.len()), (8, 8));
                });
                assert_eq!(outer_a[0], 7.0, "outer buffer untouched");
            });
        })
        .join()
        .expect("arena test thread panicked");
    }
}
