//! The precision seam: an [`Element`] trait abstracting the scalar type of
//! the whole LU pipeline (f64 for classic HPL, f32 for the HPL-MxP
//! factorization), so panel/update/swap/collectives are written once and
//! monomorphized per precision.
//!
//! The trait bundles four concerns that would otherwise fork the code path:
//!
//! * **scalar ops** — arithmetic, `abs`, comparisons, and exact bit access
//!   (`to_bits_u64`) for the checksummed broadcast and bitwise tests;
//! * **SIMD dispatch** — per-precision microkernel shapes (`micro_shape`)
//!   and entry points for the DGEMM macro loop and the FACT level-1
//!   kernels, so `RHPL_KERNEL` governs both precisions through one
//!   [`crate::kernels::active`] selection;
//! * **wire codec** — a fixed little-endian encoding (`WIRE_BYTES`,
//!   `wire_write`/`wire_read`) that `hpl-comm` uses to type frame payloads
//!   without a per-precision codec fork;
//! * **tolerance model** — the unit roundoff ([`Element::UNIT_ROUNDOFF`])
//!   that scales the classic residual gate, so an f32 factorization is
//!   judged against f32 accuracy while mixed-precision refinement is
//!   judged against f64.
//!
//! Pack arenas are thread-local and `thread_local!` cannot be generic, so
//! the arena hooks delegate to one concrete arena per precision in
//! [`crate::arena`].

use crate::kernels::KernelKind;
use crate::{arena, kernels, l1simd};

/// A user-facing element-precision request (`RHPL_ELEMENT`, `--element`),
/// before the run is monomorphized: the enum form that config parsing and
/// the CLI carry around where a type parameter cannot flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ElementSel {
    /// Classic HPL: factor and solve in double precision.
    #[default]
    F64,
    /// HPL-MxP style: factor in single precision.
    F32,
}

impl ElementSel {
    /// Display name (`"f64"` / `"f32"`), matching [`Element::NAME`].
    pub fn name(self) -> &'static str {
        match self {
            ElementSel::F64 => f64::NAME,
            ElementSel::F32 => f32::NAME,
        }
    }
}

impl std::str::FromStr for ElementSel {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, ()> {
        match s {
            "f64" => Ok(ElementSel::F64),
            "f32" => Ok(ElementSel::F32),
            _ => Err(()),
        }
    }
}

/// Scalar element type of the LU pipeline: `f64` or `f32`.
///
/// See the module docs for what each group of items is for. The trait is
/// sealed in practice (the SIMD kernels and pack arenas exist only for the
/// two floating-point widths), but not formally, to keep the bound list
/// readable at use sites.
pub trait Element:
    Copy
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + core::fmt::Debug
    + core::fmt::Display
    + core::ops::Add<Output = Self>
    + core::ops::Sub<Output = Self>
    + core::ops::Mul<Output = Self>
    + core::ops::Div<Output = Self>
    + core::ops::Neg<Output = Self>
    + core::ops::AddAssign
    + core::ops::SubAssign
    + core::ops::MulAssign
    + core::ops::DivAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// The argmax sentinel: no data element has `|v| == -inf`.
    const NEG_INFINITY: Self;
    /// Machine epsilon of this precision, widened to `f64` — the unit
    /// roundoff that scales the residual gate for a pure run in this
    /// precision.
    const UNIT_ROUNDOFF: f64;
    /// Display name (`"f64"` / `"f32"`), reported in `BENCH_hpl.json`.
    const NAME: &'static str;
    /// Stable small integer per precision (f64 = 0, f32 = 1); used to
    /// derive distinct wire ids for generic payloads like the pivot
    /// allreduce message.
    const ELEM_CODE: u32;
    /// Bytes per element in the wire encoding.
    const WIRE_BYTES: usize;

    /// Rounds an `f64` into this precision (demotion for f32).
    fn from_f64(v: f64) -> Self;
    /// Widens into `f64` (exact for both precisions).
    fn to_f64(self) -> f64;
    /// `|self|`.
    fn abs(self) -> Self;
    /// IEEE max (NaN-propagating like the std float `max`).
    fn max(self, other: Self) -> Self;
    /// IEEE min.
    fn min(self, other: Self) -> Self;
    /// `true` when neither infinite nor NaN.
    fn is_finite(self) -> bool;
    /// Raw bits, zero-extended to 64 — the checksum/bitwise-test currency.
    fn to_bits_u64(self) -> u64;
    /// Inverse of [`Element::to_bits_u64`] (truncating for f32).
    fn from_bits_u64(bits: u64) -> Self;

    /// Appends the little-endian bit pattern (`WIRE_BYTES` bytes).
    fn wire_write(self, out: &mut Vec<u8>);
    /// Reads one element from the front of `bytes`; `None` if short.
    fn wire_read(bytes: &[u8]) -> Option<Self>;

    /// `(mr, nr)` microkernel tile shape for this precision and kernel.
    fn micro_shape(kind: KernelKind) -> (usize, usize);
    /// One `mr x nr` microkernel call: `acc += A-strip * B-strip` over
    /// `kc` rank-1 terms. `astrip`/`bstrip` are the packed strips,
    /// `acc` is column-major `mr * nr`.
    fn micro(kind: KernelKind, kc: usize, astrip: &[Self], bstrip: &[Self], acc: &mut [Self]);

    /// FACT pivot search (see [`crate::l1simd::argmax_abs`]).
    fn l1_argmax_abs(kind: KernelKind, x: &[Self]) -> (usize, Self);
    /// FACT column scaling by division.
    fn l1_scal_inv(kind: KernelKind, pivot: Self, x: &mut [Self]);
    /// FACT rank-1 row kernel `y -= alpha * x`.
    fn l1_axpy_sub(kind: KernelKind, alpha: Self, x: &[Self], y: &mut [Self]);
    /// FACT lazy-update accumulator `y += alpha * x`.
    fn l1_axpy_add(kind: KernelKind, alpha: Self, x: &[Self], y: &mut [Self]);
    /// FACT lazy-update apply `y -= x`.
    fn l1_sub(kind: KernelKind, y: &mut [Self], x: &[Self]);

    /// This thread's pack-buffer arena for this precision
    /// (see [`crate::arena`]).
    fn with_pack_bufs<R>(
        alen: usize,
        blen: usize,
        f: impl FnOnce(&mut [Self], &mut [Self]) -> R,
    ) -> R;
    /// One zeroed thread-local scratch slice for this precision.
    fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [Self]) -> R) -> R;
    /// Two independent zeroed scratch slices for this precision.
    fn with_scratch2<R>(
        len0: usize,
        len1: usize,
        f: impl FnOnce(&mut [Self], &mut [Self]) -> R,
    ) -> R;
}

impl Element for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NEG_INFINITY: Self = f64::NEG_INFINITY;
    const UNIT_ROUNDOFF: f64 = f64::EPSILON;
    const NAME: &'static str = "f64";
    const ELEM_CODE: u32 = 0;
    const WIRE_BYTES: usize = 8;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline(always)]
    fn to_bits_u64(self) -> u64 {
        self.to_bits()
    }
    #[inline(always)]
    fn from_bits_u64(bits: u64) -> Self {
        f64::from_bits(bits)
    }

    #[inline]
    fn wire_write(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    #[inline]
    fn wire_read(bytes: &[u8]) -> Option<Self> {
        let raw: [u8; 8] = bytes.get(..8)?.try_into().ok()?;
        Some(f64::from_bits(u64::from_le_bytes(raw)))
    }

    #[inline]
    fn micro_shape(kind: KernelKind) -> (usize, usize) {
        kernels::shape_f64(kind)
    }
    #[inline]
    fn micro(kind: KernelKind, kc: usize, astrip: &[Self], bstrip: &[Self], acc: &mut [Self]) {
        kernels::micro_f64(kind, kc, astrip, bstrip, acc)
    }

    #[inline]
    fn l1_argmax_abs(kind: KernelKind, x: &[Self]) -> (usize, Self) {
        l1simd::argmax_abs_f64(kind, x)
    }
    #[inline]
    fn l1_scal_inv(kind: KernelKind, pivot: Self, x: &mut [Self]) {
        l1simd::scal_inv_f64(kind, pivot, x)
    }
    #[inline]
    fn l1_axpy_sub(kind: KernelKind, alpha: Self, x: &[Self], y: &mut [Self]) {
        l1simd::axpy_sub_f64(kind, alpha, x, y)
    }
    #[inline]
    fn l1_axpy_add(kind: KernelKind, alpha: Self, x: &[Self], y: &mut [Self]) {
        l1simd::axpy_add_f64(kind, alpha, x, y)
    }
    #[inline]
    fn l1_sub(kind: KernelKind, y: &mut [Self], x: &[Self]) {
        l1simd::sub_f64(kind, y, x)
    }

    #[inline]
    fn with_pack_bufs<R>(
        alen: usize,
        blen: usize,
        f: impl FnOnce(&mut [Self], &mut [Self]) -> R,
    ) -> R {
        arena::for_f64::with_pack_bufs(alen, blen, f)
    }
    #[inline]
    fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [Self]) -> R) -> R {
        arena::for_f64::with_scratch(len, f)
    }
    #[inline]
    fn with_scratch2<R>(
        len0: usize,
        len1: usize,
        f: impl FnOnce(&mut [Self], &mut [Self]) -> R,
    ) -> R {
        arena::for_f64::with_scratch2(len0, len1, f)
    }
}

impl Element for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NEG_INFINITY: Self = f32::NEG_INFINITY;
    const UNIT_ROUNDOFF: f64 = f32::EPSILON as f64;
    const NAME: &'static str = "f32";
    const ELEM_CODE: u32 = 1;
    const WIRE_BYTES: usize = 4;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline(always)]
    fn to_bits_u64(self) -> u64 {
        u64::from(self.to_bits())
    }
    #[inline(always)]
    fn from_bits_u64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }

    #[inline]
    fn wire_write(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    #[inline]
    fn wire_read(bytes: &[u8]) -> Option<Self> {
        let raw: [u8; 4] = bytes.get(..4)?.try_into().ok()?;
        Some(f32::from_bits(u32::from_le_bytes(raw)))
    }

    #[inline]
    fn micro_shape(kind: KernelKind) -> (usize, usize) {
        kernels::shape_f32(kind)
    }
    #[inline]
    fn micro(kind: KernelKind, kc: usize, astrip: &[Self], bstrip: &[Self], acc: &mut [Self]) {
        kernels::micro_f32(kind, kc, astrip, bstrip, acc)
    }

    #[inline]
    fn l1_argmax_abs(kind: KernelKind, x: &[Self]) -> (usize, Self) {
        l1simd::argmax_abs_f32(kind, x)
    }
    #[inline]
    fn l1_scal_inv(kind: KernelKind, pivot: Self, x: &mut [Self]) {
        l1simd::scal_inv_f32(kind, pivot, x)
    }
    #[inline]
    fn l1_axpy_sub(kind: KernelKind, alpha: Self, x: &[Self], y: &mut [Self]) {
        l1simd::axpy_sub_f32(kind, alpha, x, y)
    }
    #[inline]
    fn l1_axpy_add(kind: KernelKind, alpha: Self, x: &[Self], y: &mut [Self]) {
        l1simd::axpy_add_f32(kind, alpha, x, y)
    }
    #[inline]
    fn l1_sub(kind: KernelKind, y: &mut [Self], x: &[Self]) {
        l1simd::sub_f32(kind, y, x)
    }

    #[inline]
    fn with_pack_bufs<R>(
        alen: usize,
        blen: usize,
        f: impl FnOnce(&mut [Self], &mut [Self]) -> R,
    ) -> R {
        arena::for_f32::with_pack_bufs(alen, blen, f)
    }
    #[inline]
    fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [Self]) -> R) -> R {
        arena::for_f32::with_scratch(len, f)
    }
    #[inline]
    fn with_scratch2<R>(
        len0: usize,
        len1: usize,
        f: impl FnOnce(&mut [Self], &mut [Self]) -> R,
    ) -> R {
        arena::for_f32::with_scratch2(len0, len1, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_are_exact() {
        for v in [0.0f64, -0.0, 1.5, -3.25e10, f64::MIN_POSITIVE] {
            assert_eq!(f64::from_bits_u64(v.to_bits_u64()).to_bits(), v.to_bits());
            let mut buf = Vec::new();
            v.wire_write(&mut buf);
            assert_eq!(buf.len(), f64::WIRE_BYTES);
            assert_eq!(f64::wire_read(&buf).unwrap().to_bits(), v.to_bits());
        }
        for v in [0.0f32, -0.0, 1.5, -3.25e10, f32::MIN_POSITIVE] {
            assert_eq!(f32::from_bits_u64(v.to_bits_u64()).to_bits(), v.to_bits());
            let mut buf = Vec::new();
            v.wire_write(&mut buf);
            assert_eq!(buf.len(), f32::WIRE_BYTES);
            assert_eq!(f32::wire_read(&buf).unwrap().to_bits(), v.to_bits());
        }
        assert_eq!(f64::wire_read(&[0u8; 7]), None);
        assert_eq!(f32::wire_read(&[0u8; 3]), None);
    }

    #[test]
    fn precision_constants_disagree_where_they_must() {
        assert_ne!(f64::ELEM_CODE, f32::ELEM_CODE);
        let (u32_, u64_) = (f32::UNIT_ROUNDOFF, f64::UNIT_ROUNDOFF);
        assert!(u32_ > u64_);
        assert_eq!(f64::NAME, "f64");
        assert_eq!(f32::NAME, "f32");
    }

    #[test]
    fn demotion_rounds_and_promotion_is_exact() {
        let v = 1.0 + f64::EPSILON;
        assert_eq!(<f32 as Element>::from_f64(v), 1.0f32);
        let w = 1.5f32;
        assert_eq!(w.to_f64(), 1.5f64);
    }
}
