//! Thread-parallel Level-3 kernels over an `hpl-threads` pool.
//!
//! rocHPL's trailing update runs on a massively parallel device; this
//! module is the CPU-side analogue: `C`'s columns are partitioned into
//! contiguous chunks, one per pool thread. Because the serial DGEMM
//! computes every column of `C` independently with a fixed `k`-accumulation
//! order, the parallel result is **bitwise identical** to the serial one —
//! a property the benchmark driver's schedule-equivalence tests rely on.

use hpl_threads::Pool;

use crate::l3::dgemm;
use crate::mat::{MatMut, MatRef};
use crate::Trans;

/// Parallel `C <- alpha * op(A) * op(B) + beta * C` over `nthreads` pool
/// threads. Falls back to the serial kernel for one thread or skinny `C`.
pub fn dgemm_parallel(
    pool: &Pool,
    nthreads: usize,
    transa: Trans,
    transb: Trans,
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    c: &mut MatMut<'_>,
) {
    let n = c.cols();
    let nthreads = nthreads.clamp(1, pool.size()).min(n.max(1));
    if nthreads <= 1 || n < 2 {
        dgemm(transa, transb, alpha, a, b, beta, c);
        return;
    }
    let m = c.rows();
    let lda = c.lda();
    // Shared as an address so the `Fn + Sync` closure can capture it; the
    // disjoint-chunk protocol below governs the actual accesses.
    let cbase = c.as_mut_ptr() as usize;
    // Contiguous column chunks, earlier threads absorbing the remainder.
    let base = n / nthreads;
    let rem = n % nthreads;
    pool.run(nthreads, |ctx| {
        let t = ctx.thread_id();
        let j0 = t * base + t.min(rem);
        let w = base + usize::from(t < rem);
        if w == 0 {
            return;
        }
        let cptr = (cbase as *mut f64).wrapping_add(j0 * lda);
        // SAFETY: column ranges are disjoint across threads, and the
        // parent `c` borrow is held for the whole region.
        let mut cchunk = unsafe { MatMut::from_raw_parts(cptr, m, w, lda) };
        let bchunk = match transb {
            Trans::No => b.submatrix(0, j0, b.rows(), w),
            Trans::Yes => b.submatrix(j0, 0, w, b.cols()),
        };
        dgemm(transa, transb, alpha, a, bchunk, beta, &mut cchunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Matrix;

    fn filled(r: usize, c: usize, seed: usize) -> Matrix {
        Matrix::from_fn(r, c, |i, j| {
            ((i * 31 + j * 17 + seed) % 23) as f64 * 0.125 - 1.0
        })
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let pool = Pool::new(4);
        for &(m, n, k) in &[
            (40usize, 60usize, 16usize),
            (33, 7, 5),
            (64, 128, 32),
            (10, 3, 10),
        ] {
            for &(ta, tb) in &[
                (Trans::No, Trans::No),
                (Trans::Yes, Trans::No),
                (Trans::No, Trans::Yes),
            ] {
                let a = match ta {
                    Trans::No => filled(m, k, 1),
                    Trans::Yes => filled(k, m, 1),
                };
                let b = match tb {
                    Trans::No => filled(k, n, 2),
                    Trans::Yes => filled(n, k, 2),
                };
                let c0 = filled(m, n, 3);
                let mut serial = c0.clone();
                let mut sv = serial.view_mut();
                dgemm(ta, tb, -1.0, a.view(), b.view(), 1.0, &mut sv);
                for threads in [2usize, 3, 4] {
                    let mut par = c0.clone();
                    let mut pv = par.view_mut();
                    dgemm_parallel(
                        &pool,
                        threads,
                        ta,
                        tb,
                        -1.0,
                        a.view(),
                        b.view(),
                        1.0,
                        &mut pv,
                    );
                    assert_eq!(
                        par.as_slice(),
                        serial.as_slice(),
                        "m={m} n={n} k={k} t={threads} ta={ta:?} tb={tb:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn more_threads_than_columns() {
        let pool = Pool::new(8);
        let a = filled(5, 4, 1);
        let b = filled(4, 2, 2);
        let c0 = filled(5, 2, 3);
        let mut serial = c0.clone();
        let mut sv = serial.view_mut();
        dgemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.5, &mut sv);
        let mut par = c0.clone();
        let mut pv = par.view_mut();
        dgemm_parallel(
            &pool,
            8,
            Trans::No,
            Trans::No,
            1.0,
            a.view(),
            b.view(),
            0.5,
            &mut pv,
        );
        assert_eq!(par.as_slice(), serial.as_slice());
    }

    #[test]
    fn single_thread_falls_back() {
        let pool = Pool::new(2);
        let a = filled(8, 8, 1);
        let b = filled(8, 8, 2);
        let mut c = Matrix::zeros(8, 8);
        let mut cv = c.view_mut();
        dgemm_parallel(
            &pool,
            1,
            Trans::No,
            Trans::No,
            1.0,
            a.view(),
            b.view(),
            0.0,
            &mut cv,
        );
        assert!(c.as_slice().iter().any(|&v| v != 0.0));
    }
}
