//! Thread-parallel Level-3 kernels over an `hpl-threads` pool.
//!
//! rocHPL's trailing update runs on a massively parallel device; this
//! module is the CPU-side analogue: `C` is cut into a 2D grid of
//! `(jc, ic)` macro tiles which the pool threads claim by work-stealing
//! from a shared atomic counter — so wide, tall *and* skinny-but-tall
//! updates all scale. Each element of `C` is produced by the same packed
//! strips, the same register tile and the same `k`-accumulation order as
//! the serial kernel regardless of how the grid is cut, so within one
//! kernel choice the parallel result is **bitwise identical** to the
//! serial one — a property the benchmark driver's schedule-equivalence
//! tests rely on. All of it is generic over the pipeline [`Element`], so
//! the f32 factorization scales across the same tile grid.

use std::sync::atomic::{AtomicUsize, Ordering};

use hpl_threads::Pool;

use crate::l3::kernels::{self, Kernel};
use crate::l3::{dgemm_packed, dgemm_with, round_up, PackedA, MC, NC};
use crate::mat::{MatMut, MatRef};
use crate::Element;
use crate::Trans;

/// Parallel `C <- alpha * op(A) * op(B) + beta * C` over `nthreads` pool
/// threads with the process-wide kernel. Falls back to the serial kernel
/// for one thread or tiny `C`.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_parallel<E: Element>(
    pool: &Pool,
    nthreads: usize,
    transa: Trans,
    transb: Trans,
    alpha: E,
    a: MatRef<'_, E>,
    b: MatRef<'_, E>,
    beta: E,
    c: &mut MatMut<'_, E>,
) {
    dgemm_parallel_with(
        kernels::active(),
        pool,
        nthreads,
        transa,
        transb,
        alpha,
        a,
        b,
        beta,
        c,
    );
}

/// [`dgemm_parallel`] with an explicit microkernel.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_parallel_with<E: Element>(
    kern: Kernel,
    pool: &Pool,
    nthreads: usize,
    transa: Trans,
    transb: Trans,
    alpha: E,
    a: MatRef<'_, E>,
    b: MatRef<'_, E>,
    beta: E,
    c: &mut MatMut<'_, E>,
) {
    let m = c.rows();
    let n = c.cols();
    let k = match transa {
        Trans::No => a.cols(),
        Trans::Yes => a.rows(),
    };
    let nthreads = nthreads.clamp(1, pool.size());
    let grid = TileGrid::new(kern.mr_for::<E>(), kern.nr_for::<E>(), m, n, nthreads);
    if nthreads <= 1 || grid.tiles() <= 1 || alpha == E::ZERO || k == 0 {
        dgemm_with(kern, transa, transb, alpha, a, b, beta, c);
        return;
    }
    let lda = c.lda();
    // Shared as an address so the `Fn + Sync` closure can capture it; the
    // disjoint-tile protocol below governs the actual accesses.
    let cbase = c.as_mut_ptr() as usize;
    let next = AtomicUsize::new(0);
    pool.run(nthreads.min(grid.tiles()), |_ctx| {
        loop {
            let t = next.fetch_add(1, Ordering::Relaxed);
            if t >= grid.tiles() {
                break;
            }
            let (ic, jc, mc, nc) = grid.tile(t);
            let cptr = (cbase as *mut E).wrapping_add(jc * lda + ic);
            // SAFETY: the grid assigns every (ic, jc) tile to exactly one
            // `fetch_add` winner, so tiles are disjoint in memory, and the
            // parent `c` borrow is held for the whole pool region.
            let mut ctile = unsafe { MatMut::from_raw_parts(cptr, mc, nc, lda) };
            let atile = match transa {
                Trans::No => a.submatrix(ic, 0, mc, k),
                Trans::Yes => a.submatrix(0, ic, k, mc),
            };
            let btile = match transb {
                Trans::No => b.submatrix(0, jc, k, nc),
                Trans::Yes => b.submatrix(jc, 0, nc, k),
            };
            dgemm_with(kern, transa, transb, alpha, atile, btile, beta, &mut ctile);
        }
    });
}

/// Parallel `C <- alpha * A * op(B) + beta * C` where `A` is a pre-packed
/// [`PackedA`] shared (read-only) by every worker — the trailing-update
/// path: the `L2` panel is packed once per iteration and each thread's row
/// tile slices straight into it instead of repacking.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_parallel_packed<E: Element>(
    kern: Kernel,
    pool: &Pool,
    nthreads: usize,
    alpha: E,
    packed: &PackedA<E>,
    transb: Trans,
    b: MatRef<'_, E>,
    beta: E,
    c: &mut MatMut<'_, E>,
) {
    let m = c.rows();
    let n = c.cols();
    let k = packed.depth();
    let nthreads = nthreads.clamp(1, pool.size());
    let grid = TileGrid::new(kern.mr_for::<E>(), kern.nr_for::<E>(), m, n, nthreads);
    if nthreads <= 1 || grid.tiles() <= 1 || alpha == E::ZERO || k == 0 {
        dgemm_packed(kern, alpha, packed, 0, transb, b, beta, c);
        return;
    }
    let lda = c.lda();
    let cbase = c.as_mut_ptr() as usize;
    let next = AtomicUsize::new(0);
    pool.run(nthreads.min(grid.tiles()), |_ctx| {
        loop {
            let t = next.fetch_add(1, Ordering::Relaxed);
            if t >= grid.tiles() {
                break;
            }
            let (ic, jc, mc, nc) = grid.tile(t);
            let cptr = (cbase as *mut E).wrapping_add(jc * lda + ic);
            // SAFETY: the grid assigns every (ic, jc) tile to exactly one
            // `fetch_add` winner, so tiles are disjoint in memory, and the
            // parent `c` borrow is held for the whole pool region.
            let mut ctile = unsafe { MatMut::from_raw_parts(cptr, mc, nc, lda) };
            let btile = match transb {
                Trans::No => b.submatrix(0, jc, k, nc),
                Trans::Yes => b.submatrix(jc, 0, nc, k),
            };
            dgemm_packed(kern, alpha, packed, ic, transb, btile, beta, &mut ctile);
        }
    });
}

/// The 2D macro-tile decomposition of an `m x n` C.
///
/// Tiles start at the serial cache-block shape (`MC x NC`) and the larger
/// dimension is halved (keeping register-tile alignment, so row tiles stay
/// valid `PackedA` offsets) until the grid has enough tiles to keep every
/// thread busy or the tiles reach a useful minimum. Register-tile shapes
/// are per-precision, so the grid takes the `(mr, nr)` the caller resolved
/// for its element type.
#[derive(Clone, Copy, Debug)]
struct TileGrid {
    m: usize,
    n: usize,
    tm: usize,
    tn: usize,
    mtiles: usize,
    ntiles: usize,
}

impl TileGrid {
    fn new(mr: usize, nr: usize, m: usize, n: usize, nthreads: usize) -> TileGrid {
        let mut tm = MC.min(round_up(m.max(1), mr));
        let mut tn = NC.min(round_up(n.max(1), nr));
        let target = 3 * nthreads.max(1);
        loop {
            if m.div_ceil(tm) * n.div_ceil(tn) >= target {
                break;
            }
            let can_m = tm / 2 >= 4 * mr;
            let can_n = tn / 2 >= 4 * nr;
            if can_n && (tn >= tm || !can_m) {
                tn = round_up(tn / 2, nr);
            } else if can_m {
                tm = round_up(tm / 2, mr);
            } else {
                break;
            }
        }
        TileGrid {
            m,
            n,
            tm,
            tn,
            mtiles: m.div_ceil(tm).max(1),
            ntiles: n.div_ceil(tn).max(1),
        }
    }

    fn tiles(&self) -> usize {
        if self.m == 0 || self.n == 0 {
            0
        } else {
            self.mtiles * self.ntiles
        }
    }

    /// Maps a claimed index to `(ic, jc, mc, nc)`; row tiles vary fastest
    /// so consecutive claims share the same B panel while it is hot.
    fn tile(&self, t: usize) -> (usize, usize, usize, usize) {
        let ic = (t % self.mtiles) * self.tm;
        let jc = (t / self.mtiles) * self.tn;
        (ic, jc, self.tm.min(self.m - ic), self.tn.min(self.n - jc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::l3::dgemm;
    use crate::mat::Matrix;

    fn filled(r: usize, c: usize, seed: usize) -> Matrix {
        Matrix::from_fn(r, c, |i, j| {
            ((i * 31 + j * 17 + seed) % 23) as f64 * 0.125 - 1.0
        })
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let pool = Pool::new(4);
        for &(m, n, k) in &[
            (40usize, 60usize, 16usize),
            (33, 7, 5),
            (64, 128, 32),
            (10, 3, 10),
        ] {
            for &(ta, tb) in &[
                (Trans::No, Trans::No),
                (Trans::Yes, Trans::No),
                (Trans::No, Trans::Yes),
            ] {
                let a = match ta {
                    Trans::No => filled(m, k, 1),
                    Trans::Yes => filled(k, m, 1),
                };
                let b = match tb {
                    Trans::No => filled(k, n, 2),
                    Trans::Yes => filled(n, k, 2),
                };
                let c0 = filled(m, n, 3);
                let mut serial = c0.clone();
                let mut sv = serial.view_mut();
                dgemm(ta, tb, -1.0, a.view(), b.view(), 1.0, &mut sv);
                for threads in [2usize, 3, 4] {
                    let mut par = c0.clone();
                    let mut pv = par.view_mut();
                    dgemm_parallel(
                        &pool,
                        threads,
                        ta,
                        tb,
                        -1.0,
                        a.view(),
                        b.view(),
                        1.0,
                        &mut pv,
                    );
                    assert_eq!(
                        par.as_slice(),
                        serial.as_slice(),
                        "m={m} n={n} k={k} t={threads} ta={ta:?} tb={tb:?}"
                    );
                }
            }
        }
    }

    /// Both explicit kernels, both parallel paths (repacking and
    /// shared-`PackedA`), against the serial kernel — bitwise.
    #[test]
    fn parallel_paths_match_serial_bitwise_per_kernel() {
        let pool = Pool::new(4);
        let kerns: Vec<Kernel> = [Kernel::scalar()]
            .into_iter()
            .chain(Kernel::simd())
            .collect();
        for kern in kerns {
            for &(m, n, k) in &[(70usize, 9usize, 33usize), (9, 70, 12), (64, 64, 64)] {
                let a = filled(m, k, 4);
                let b = filled(k, n, 5);
                let c0 = filled(m, n, 6);
                let mut serial = c0.clone();
                let mut sv = serial.view_mut();
                dgemm_with(
                    kern,
                    Trans::No,
                    Trans::No,
                    -1.0,
                    a.view(),
                    b.view(),
                    1.0,
                    &mut sv,
                );
                let mut par = c0.clone();
                let mut pv = par.view_mut();
                dgemm_parallel_with(
                    kern,
                    &pool,
                    4,
                    Trans::No,
                    Trans::No,
                    -1.0,
                    a.view(),
                    b.view(),
                    1.0,
                    &mut pv,
                );
                assert_eq!(
                    par.as_slice(),
                    serial.as_slice(),
                    "repack path, kernel {} m={m} n={n} k={k}",
                    kern.name()
                );
                let packed = PackedA::pack(kern, Trans::No, a.view());
                let mut ppar = c0.clone();
                let mut ppv = ppar.view_mut();
                dgemm_parallel_packed(
                    kern,
                    &pool,
                    4,
                    -1.0,
                    &packed,
                    Trans::No,
                    b.view(),
                    1.0,
                    &mut ppv,
                );
                assert_eq!(
                    ppar.as_slice(),
                    serial.as_slice(),
                    "packed path, kernel {} m={m} n={n} k={k}",
                    kern.name()
                );
            }
        }
    }

    /// The f32 instantiation runs the same grid and stays bitwise equal to
    /// its own serial kernel.
    #[test]
    fn parallel_matches_serial_bitwise_f32() {
        let pool = Pool::new(4);
        let a = Matrix::<f32>::from_fn(70, 33, |i, j| ((i * 31 + j * 17 + 4) % 23) as f32 * 0.125);
        let b = Matrix::<f32>::from_fn(33, 9, |i, j| ((i * 31 + j * 17 + 5) % 23) as f32 * 0.125);
        let c0 = Matrix::<f32>::from_fn(70, 9, |i, j| ((i * 31 + j * 17 + 6) % 23) as f32 * 0.125);
        let mut serial = c0.clone();
        let mut sv = serial.view_mut();
        dgemm(
            Trans::No,
            Trans::No,
            -1.0f32,
            a.view(),
            b.view(),
            1.0f32,
            &mut sv,
        );
        let mut par = c0.clone();
        let mut pv = par.view_mut();
        dgemm_parallel(
            &pool,
            4,
            Trans::No,
            Trans::No,
            -1.0f32,
            a.view(),
            b.view(),
            1.0f32,
            &mut pv,
        );
        assert_eq!(par.as_slice(), serial.as_slice());
    }

    #[test]
    fn more_threads_than_columns() {
        let pool = Pool::new(8);
        let a = filled(5, 4, 1);
        let b = filled(4, 2, 2);
        let c0 = filled(5, 2, 3);
        let mut serial = c0.clone();
        let mut sv = serial.view_mut();
        dgemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.5, &mut sv);
        let mut par = c0.clone();
        let mut pv = par.view_mut();
        dgemm_parallel(
            &pool,
            8,
            Trans::No,
            Trans::No,
            1.0,
            a.view(),
            b.view(),
            0.5,
            &mut pv,
        );
        assert_eq!(par.as_slice(), serial.as_slice());
    }

    #[test]
    fn single_thread_falls_back() {
        let pool = Pool::new(2);
        let a = filled(8, 8, 1);
        let b = filled(8, 8, 2);
        let mut c = Matrix::zeros(8, 8);
        let mut cv = c.view_mut();
        dgemm_parallel(
            &pool,
            1,
            Trans::No,
            Trans::No,
            1.0,
            a.view(),
            b.view(),
            0.0,
            &mut cv,
        );
        assert!(c.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn tile_grid_covers_exactly_once() {
        let kern = Kernel::scalar();
        let (mr, nr) = (kern.mr(), kern.nr());
        for &(m, n, t) in &[(1000usize, 7usize, 8usize), (7, 1000, 8), (513, 513, 4)] {
            let grid = TileGrid::new(mr, nr, m, n, t);
            let mut hits = vec![0u8; m * n];
            for idx in 0..grid.tiles() {
                let (ic, jc, mc, nc) = grid.tile(idx);
                assert_eq!(ic % mr, 0, "row tiles stay mr-aligned");
                for j in jc..jc + nc {
                    for i in ic..ic + mc {
                        hits[j * m + i] += 1;
                    }
                }
            }
            assert!(hits.iter().all(|&h| h == 1), "m={m} n={n} t={t}");
            assert!(
                grid.tiles() >= 3 * t || grid.tiles() >= (m * n) / (32 * 24),
                "skinny shapes still split: m={m} n={n} t={t} tiles={}",
                grid.tiles()
            );
        }
    }
}
