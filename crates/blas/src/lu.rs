//! Serial dense LU factorization with partial pivoting (LAPACK DGETRF
//! equivalent) and a dense solver.
//!
//! These serve two purposes: the blocked variant is the single-process
//! oracle the distributed HPL factorization is validated against, and the
//! unblocked kernel is reused as the base case of the panel factorization.

use crate::aux::swap_rows;
use crate::l1::idamax;
use crate::l2::dger;
use crate::l3::{dgemm, dtrsm};
use crate::mat::MatMut;
use crate::{Diag, Side, Trans, Uplo};

/// Error returned when a zero pivot makes the factorization singular.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Singular {
    /// Global column index (0-based) where the zero pivot occurred.
    pub col: usize,
}

impl core::fmt::Display for Singular {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "matrix is singular: zero pivot at column {}", self.col)
    }
}

impl std::error::Error for Singular {}

/// Unblocked right-looking LU with partial pivoting on an `m x n` matrix
/// (`m >= n` callers only, as in a panel). Writes 0-based pivot indices
/// (`piv[k]` = row swapped with row `k`) into `piv[..n]`.
pub fn getrf_unblocked(a: &mut MatMut<'_>, piv: &mut [usize]) -> Result<(), Singular> {
    let m = a.rows();
    let n = a.cols();
    assert!(piv.len() >= n, "pivot array too small");
    for k in 0..n.min(m) {
        // Find the pivot in column k, rows k..m.
        let p = k + idamax(&a.col(k)[k..]).expect("nonempty column");
        piv[k] = p;
        if a.get(p, k) == 0.0 {
            return Err(Singular { col: k });
        }
        swap_rows(a, k, p);
        // Scale the multipliers.
        let akk = a.get(k, k);
        for v in &mut a.col_mut(k)[k + 1..] {
            *v /= akk;
        }
        // Rank-1 update of the trailing submatrix.
        if k + 1 < n && k + 1 < m {
            let (cols_k, mut rest) = a.submatrix_mut(0, 0, m, n).split_at_col(k + 1);
            let x = &cols_k.col(k)[k + 1..];
            // y = row k of the trailing columns.
            let y: Vec<f64> = (0..rest.cols()).map(|j| rest.as_ref().get(k, j)).collect();
            let mut trail = rest.submatrix_mut(k + 1, 0, m - k - 1, n - k - 1);
            dger(-1.0, x, &y, &mut trail);
        }
    }
    Ok(())
}

/// Blocked right-looking LU with partial pivoting (DGETRF). `piv` receives
/// one 0-based pivot per column.
pub fn getrf(a: &mut MatMut<'_>, piv: &mut [usize], nb: usize) -> Result<(), Singular> {
    let m = a.rows();
    let n = a.cols();
    assert!(piv.len() >= n.min(m), "pivot array too small");
    let nb = nb.max(1);
    let kmax = n.min(m);
    let mut k = 0;
    while k < kmax {
        let kb = nb.min(kmax - k);
        // Factor the current panel A[k.., k..k+kb].
        {
            let mut panel = a.submatrix_mut(k, k, m - k, kb);
            let mut lp = vec![0usize; kb];
            getrf_unblocked(&mut panel, &mut lp).map_err(|e| Singular { col: k + e.col })?;
            for (i, &p) in lp.iter().enumerate() {
                piv[k + i] = k + p;
            }
        }
        // Apply the pivots to the columns outside the panel.
        for i in 0..kb {
            let p = piv[k + i];
            if p != k + i {
                if k > 0 {
                    let mut left = a.submatrix_mut(0, 0, m, k);
                    swap_rows(&mut left, k + i, p);
                }
                if k + kb < n {
                    let mut right = a.submatrix_mut(0, k + kb, m, n - k - kb);
                    swap_rows(&mut right, k + i, p);
                }
            }
        }
        if k + kb < n {
            // U12 = L11^{-1} * A12.
            let (mid, mut right) = a.submatrix_mut(0, 0, m, n).split_at_col(k + kb);
            let l11 = mid.as_ref().submatrix(k, k, kb, kb);
            let mut a12 = right.submatrix_mut(k, 0, kb, n - k - kb);
            dtrsm(
                Side::Left,
                Uplo::Lower,
                Trans::No,
                Diag::Unit,
                1.0,
                l11,
                &mut a12,
            );
            // A22 -= L21 * U12.
            if k + kb < m {
                let l21 = mid.as_ref().submatrix(k + kb, k, m - k - kb, kb);
                let (u_rows, mut a22) = right.split_at_row(k + kb);
                let u12 = u_rows.as_ref().submatrix(k, 0, kb, n - k - kb);
                dgemm(Trans::No, Trans::No, -1.0, l21, u12, 1.0, &mut a22);
            }
        }
        k += kb;
    }
    Ok(())
}

/// Solves `A x = b` in place using a factorization produced by [`getrf`]:
/// applies the row interchanges to `b`, then `L^{-1}` and `U^{-1}`.
pub fn getrs(lu: &MatMut<'_>, piv: &[usize], b: &mut [f64]) {
    let n = lu.rows();
    assert_eq!(lu.cols(), n, "getrs: LU must be square");
    assert_eq!(b.len(), n, "getrs: rhs length mismatch");
    for (k, &p) in piv.iter().enumerate() {
        if p != k {
            b.swap(k, p);
        }
    }
    crate::l2::dtrsv(Uplo::Lower, Trans::No, Diag::Unit, lu.as_ref(), b);
    crate::l2::dtrsv(Uplo::Upper, Trans::No, Diag::NonUnit, lu.as_ref(), b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Matrix;

    fn test_matrix(n: usize, seed: u64) -> Matrix {
        // Simple deterministic LCG fill, diagonally dominant enough to be
        // well-conditioned but still exercising pivoting.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Matrix::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
    }

    fn check_solve(n: usize, nb: usize, seed: u64) {
        let a0 = test_matrix(n, seed);
        let xtrue: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let mut b = vec![0.0; n];
        crate::l2::dgemv(Trans::No, 1.0, a0.view(), &xtrue, 0.0, &mut b);

        let mut a = a0.clone();
        let mut piv = vec![0usize; n];
        let mut av = a.view_mut();
        getrf(&mut av, &mut piv, nb).expect("nonsingular");
        getrs(&av, &piv, &mut b);
        for (got, want) in b.iter().zip(&xtrue) {
            assert!((got - want).abs() < 1e-8, "n={n} nb={nb}: {got} vs {want}");
        }
    }

    #[test]
    fn blocked_lu_solves() {
        for &(n, nb) in &[
            (1, 1),
            (5, 2),
            (16, 4),
            (33, 8),
            (64, 16),
            (100, 32),
            (128, 128),
        ] {
            check_solve(n, nb, 42 + n as u64);
        }
    }

    #[test]
    fn blocked_matches_unblocked() {
        let n = 40;
        let a0 = test_matrix(n, 7);
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        let mut p1 = vec![0usize; n];
        let mut p2 = vec![0usize; n];
        let mut v1 = a1.view_mut();
        getrf_unblocked(&mut v1, &mut p1).expect("test matrix is well conditioned");
        let mut v2 = a2.view_mut();
        getrf(&mut v2, &mut p2, 8).expect("test matrix is well conditioned");
        assert_eq!(p1, p2, "pivot sequences must agree");
        for (x, y) in a1.as_slice().iter().zip(a2.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_detected() {
        let mut a = Matrix::zeros(3, 3);
        let mut piv = vec![0usize; 3];
        let mut v = a.view_mut();
        let err = getrf(&mut v, &mut piv, 2).unwrap_err();
        assert_eq!(err.col, 0);
    }

    #[test]
    fn pivoting_actually_pivots() {
        // First pivot must pick the largest-magnitude entry of column 0.
        let a0 = Matrix::from_vec(3, 3, vec![1.0, -9.0, 2.0, 0.5, 1.0, 2.0, 3.0, 1.0, 1.0]);
        let mut a = a0.clone();
        let mut piv = vec![0usize; 3];
        let mut v = a.view_mut();
        getrf(&mut v, &mut piv, 1).expect("matrix has a nonzero pivot in every column");
        assert_eq!(piv[0], 1);
        // All multipliers must be <= 1 in magnitude thanks to pivoting.
        for k in 0..3 {
            for i in k + 1..3 {
                assert!(a.get(i, k).abs() <= 1.0 + 1e-12);
            }
        }
    }
}
