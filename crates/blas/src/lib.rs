//! # hpl-blas
//!
//! Dense, column-major linear-algebra kernels for the `rhpl` workspace —
//! the subset of BLAS/LAPACK that the High-Performance Linpack benchmark
//! consumes, implemented from scratch in safe-by-construction Rust (all
//! pointer arithmetic is private to the [`mat`] view types) and generic
//! over the pipeline precision via the [`Element`] trait (`f64` for
//! classic HPL, `f32` for the HPL-MxP factorization; every public entry
//! point defaults to `f64`, so existing call sites read unchanged).
//!
//! In the paper's system these roles are played by rocBLAS (on the GPU) and
//! BLIS (on the CPU); here one portable implementation backs both the
//! "device" and "host" sides of the reproduction, while the relative
//! *performance* of the two is modeled by the `hpl-sim` crate.
//!
//! Quick map:
//! * [`elem`] — the [`Element`] precision seam (scalar ops, SIMD shapes,
//!   wire codec, tolerance model) that the rest of the crate is generic
//!   over.
//! * [`mat`] — `MatRef` / `MatMut` column-major views, owned [`mat::Matrix`].
//! * [`l1`] — vector kernels (`idamax` drives pivot selection).
//! * [`l2`] — `dger` (rank-1 panel update), `dgemv`, `dtrsv`.
//! * [`l3`] — blocked/packed [`l3::dgemm`] and recursive [`l3::dtrsm`].
//! * [`l3::kernels`] — register microkernels (scalar / AVX2+FMA / NEON)
//!   and the per-run kernel selection (`RHPL_KERNEL`, `--kernel`).
//! * [`arena`] — thread-local grow-only pack buffers (allocation-free
//!   steady-state DGEMM).
//! * [`aux`] — `dlacpy`, `dlange`, `dlaswp` row interchanges.
//! * [`lu`] — serial DGETRF/DGETRS used as the correctness oracle.

// Lint policy: indexed loops are used deliberately where they mirror the
// reference BLAS/HPL loop structure, and several kernels take the full
// argument list their BLAS counterparts do.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::too_many_arguments)]

pub mod arena;
pub mod aux;
pub mod elem;
pub mod l1;
pub mod l1simd;
pub mod l2;
pub mod l3;
pub mod l3par;
pub mod lu;
pub mod mat;

pub use aux::{dlacpy, dlange, dlaswp, dlaswp_inv, dlatcpy, swap_rows, Norm};
pub use elem::{Element, ElementSel};
pub use l1::{dasum, daxpy, dcopy, ddot, dnrm2, dscal, dswap, idamax};
pub use l1simd::{argmax_abs, axpy_add, axpy_sub, dscal_inv, dsub};
pub use l2::{dgemv, dger, dtrsv};
pub use l3::kernels::{self, Kernel, KernelKind, KernelSel};
pub use l3::{dgemm, dgemm_naive, dgemm_packed, dgemm_with, dtrsm, PackedA};
pub use l3par::{dgemm_parallel, dgemm_parallel_packed, dgemm_parallel_with};
pub use lu::{getrf, getrf_unblocked, getrs, Singular};
pub use mat::{MatMut, MatRef, Matrix};

/// Whether a matrix argument is used transposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Use the matrix as stored.
    No,
    /// Use the transpose of the stored matrix.
    Yes,
}

/// Which triangle of a triangular matrix is referenced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Uplo {
    /// Upper triangle.
    Upper,
    /// Lower triangle.
    Lower,
}

/// Whether a triangular matrix has an implicit unit diagonal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Diag {
    /// Diagonal entries are taken to be 1 and never read.
    Unit,
    /// Diagonal entries are read from storage.
    NonUnit,
}

/// Which side a triangular factor multiplies from in [`l3::dtrsm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Solve `op(T) X = alpha B`.
    Left,
    /// Solve `X op(T) = alpha B`.
    Right,
}
