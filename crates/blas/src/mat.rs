//! Column-major matrix views.
//!
//! HPL operates on column-major storage with an explicit leading dimension
//! (`lda`), constantly taking submatrix views of one distributed local array.
//! [`MatRef`] and [`MatMut`] capture exactly that: a `(rows, cols, lda)`
//! window into a flat element buffer. Views are constructed from slices (so
//! the borrow checker governs aliasing at the buffer level) and sub-views
//! are produced by consuming/reborrowing splits, which keeps the `unsafe`
//! pointer arithmetic private to this module.
//!
//! All three types are generic over the pipeline [`Element`] with `f64` as
//! the default, so classic-HPL call sites read exactly as before while the
//! mixed-precision path instantiates the same code at `f32`.

use crate::Element;
use core::fmt;
use core::marker::PhantomData;

/// Immutable column-major matrix view with leading dimension `lda >= rows`.
#[derive(Clone, Copy)]
pub struct MatRef<'a, E: Element = f64> {
    ptr: *const E,
    rows: usize,
    cols: usize,
    lda: usize,
    _marker: PhantomData<&'a E>,
}

/// Mutable column-major matrix view with leading dimension `lda >= rows`.
pub struct MatMut<'a, E: Element = f64> {
    ptr: *mut E,
    rows: usize,
    cols: usize,
    lda: usize,
    _marker: PhantomData<&'a mut E>,
}

// A view is a window onto a `&[E]`/`&mut [E]`; sending it to another
// thread is as safe as sending the underlying borrow (`E: Element` is
// `Send + Sync` plain-old-data). `MatMut` is deliberately NOT `Sync`:
// `&MatMut` exposes reads (`get`, `col`) that would race with the owner's
// writes if shared across threads.
// SAFETY: semantically `&[E]` (shared read-only window); `&[E]` is Send.
unsafe impl<E: Element> Send for MatRef<'_, E> {}
// SAFETY: `&MatRef` exposes only reads of plain elements, like `&&[E]`.
unsafe impl<E: Element> Sync for MatRef<'_, E> {}
// SAFETY: semantically `&mut [E]` (exclusive window, the `from_raw_parts`
// contract forbids aliased access to the window); `&mut [E]` is Send.
unsafe impl<E: Element> Send for MatMut<'_, E> {}

#[inline]
fn check_dims(len: usize, rows: usize, cols: usize, lda: usize) {
    assert!(lda >= rows.max(1), "lda ({lda}) must be >= rows ({rows})");
    if rows > 0 && cols > 0 {
        let need = lda
            .checked_mul(cols - 1)
            .and_then(|x| x.checked_add(rows))
            .expect("matrix extent overflows usize");
        assert!(
            len >= need,
            "buffer of len {len} too small for {rows}x{cols} view with lda {lda} (need {need})"
        );
    }
}

impl<'a, E: Element> MatRef<'a, E> {
    /// Views `data` as a `rows x cols` column-major matrix with leading
    /// dimension `lda`. Panics if the buffer is too small.
    #[inline]
    pub fn from_slice(data: &'a [E], rows: usize, cols: usize, lda: usize) -> Self {
        check_dims(data.len(), rows, cols, lda);
        Self {
            ptr: data.as_ptr(),
            rows,
            cols,
            lda,
            _marker: PhantomData,
        }
    }

    /// Builds a view from a raw pointer to element `(0, 0)`.
    ///
    /// # Safety
    /// The window `(rows, cols, lda)` starting at `ptr` must be readable and
    /// unaliased by mutable accesses for the lifetime `'a`.
    #[inline]
    pub unsafe fn from_raw_parts(ptr: *const E, rows: usize, cols: usize, lda: usize) -> Self {
        assert!(lda >= rows.max(1), "lda ({lda}) must be >= rows ({rows})");
        Self {
            ptr,
            rows,
            cols,
            lda,
            _marker: PhantomData,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension of the underlying buffer.
    #[inline]
    pub fn lda(&self) -> usize {
        self.lda
    }

    /// `true` if the view contains no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Element `(i, j)` without bounds checks.
    ///
    /// # Safety
    /// `i < rows()` and `j < cols()`.
    #[inline(always)]
    pub unsafe fn get_unchecked(&self, i: usize, j: usize) -> E {
        debug_assert!(i < self.rows && j < self.cols);
        // SAFETY: caller guarantees `(i, j)` is inside the window, so the
        // offset stays within the allocation.
        let p = unsafe { self.ptr.add(j * self.lda + i) };
        // SAFETY: the view's construction guarantees the window is readable.
        unsafe { *p }
    }

    /// Element `(i, j)` with bounds checks.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> E {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        // SAFETY: bounds just asserted.
        unsafe { self.get_unchecked(i, j) }
    }

    /// Column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &'a [E] {
        assert!(j < self.cols, "column {j} out of {}", self.cols);
        // SAFETY: `j` in bounds, so the column start is inside the window.
        let p = unsafe { self.ptr.add(j * self.lda) };
        // SAFETY: each column holds `rows` contiguous readable elements by
        // the view's construction contract.
        unsafe { core::slice::from_raw_parts(p, self.rows) }
    }

    /// Raw pointer to element `(0, 0)`.
    #[inline]
    pub fn as_ptr(&self) -> *const E {
        self.ptr
    }

    /// Sub-view of size `nrows x ncols` starting at `(i, j)`.
    #[inline]
    pub fn submatrix(&self, i: usize, j: usize, nrows: usize, ncols: usize) -> MatRef<'a, E> {
        assert!(
            i + nrows <= self.rows,
            "row window {i}+{nrows} out of {}",
            self.rows
        );
        assert!(
            j + ncols <= self.cols,
            "col window {j}+{ncols} out of {}",
            self.cols
        );
        MatRef {
            // SAFETY: `(i, j)` is inside the window by the asserts above.
            ptr: unsafe { self.ptr.add(j * self.lda + i) },
            rows: nrows,
            cols: ncols,
            lda: self.lda,
            _marker: PhantomData,
        }
    }

    /// Copies the view into a fresh dense `rows*cols` vector (lda == rows).
    pub fn to_vec(&self) -> Vec<E> {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for j in 0..self.cols {
            out.extend_from_slice(self.col(j));
        }
        out
    }
}

impl<'a, E: Element> MatMut<'a, E> {
    /// Views `data` as a mutable `rows x cols` column-major matrix.
    #[inline]
    pub fn from_slice(data: &'a mut [E], rows: usize, cols: usize, lda: usize) -> Self {
        check_dims(data.len(), rows, cols, lda);
        Self {
            ptr: data.as_mut_ptr(),
            rows,
            cols,
            lda,
            _marker: PhantomData,
        }
    }

    /// Builds a mutable view from a raw pointer to element `(0, 0)`.
    ///
    /// # Safety
    /// The elements of the window `(rows, cols, lda)` starting at `ptr`
    /// (i.e. rows `0..rows` of each of the `cols` columns, *not* the gaps
    /// between columns) must be exclusively accessible through this view
    /// for the lifetime `'a`.
    #[inline]
    pub unsafe fn from_raw_parts(ptr: *mut E, rows: usize, cols: usize, lda: usize) -> Self {
        assert!(lda >= rows.max(1), "lda ({lda}) must be >= rows ({rows})");
        Self {
            ptr,
            rows,
            cols,
            lda,
            _marker: PhantomData,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension of the underlying buffer.
    #[inline]
    pub fn lda(&self) -> usize {
        self.lda
    }

    /// `true` if the view contains no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Element `(i, j)` without bounds checks.
    ///
    /// # Safety
    /// `i < rows()` and `j < cols()`.
    #[inline(always)]
    pub unsafe fn get_unchecked(&self, i: usize, j: usize) -> E {
        debug_assert!(i < self.rows && j < self.cols);
        // SAFETY: caller guarantees `(i, j)` is inside the window, so the
        // offset stays within the allocation.
        let p = unsafe { self.ptr.add(j * self.lda + i) };
        // SAFETY: the window is exclusively ours by the view's construction
        // contract, hence readable.
        unsafe { *p }
    }

    /// Writes element `(i, j)` without bounds checks.
    ///
    /// # Safety
    /// `i < rows()` and `j < cols()`.
    #[inline(always)]
    pub unsafe fn set_unchecked(&mut self, i: usize, j: usize, v: E) {
        debug_assert!(i < self.rows && j < self.cols);
        // SAFETY: caller guarantees `(i, j)` is inside the window, so the
        // offset stays within the allocation.
        let p = unsafe { self.ptr.add(j * self.lda + i) };
        // SAFETY: `&mut self` plus the construction contract make the
        // write exclusive.
        unsafe { *p = v };
    }

    /// Element `(i, j)` with bounds checks.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> E {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        // SAFETY: bounds just asserted.
        unsafe { self.get_unchecked(i, j) }
    }

    /// Writes element `(i, j)` with bounds checks.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: E) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        // SAFETY: bounds just asserted.
        unsafe { self.set_unchecked(i, j, v) }
    }

    /// Column `j` as a contiguous mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [E] {
        assert!(j < self.cols, "column {j} out of {}", self.cols);
        // SAFETY: `j` in bounds, so the column start is inside the window.
        let p = unsafe { self.ptr.add(j * self.lda) };
        // SAFETY: the column's `rows` elements are inside the
        // exclusively-owned window, and `&mut self` prevents overlap with
        // any other slice borrowed from this view.
        unsafe { core::slice::from_raw_parts_mut(p, self.rows) }
    }

    /// Column `j` as a contiguous immutable slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[E] {
        assert!(j < self.cols, "column {j} out of {}", self.cols);
        // SAFETY: `j` in bounds, so the column start is inside the window.
        let p = unsafe { self.ptr.add(j * self.lda) };
        // SAFETY: `&self` keeps writers out for the duration of the
        // returned borrow.
        unsafe { core::slice::from_raw_parts(p, self.rows) }
    }

    /// Raw pointer to element `(0, 0)`.
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut E {
        self.ptr
    }

    /// Immutable view of the same window.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_, E> {
        MatRef {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            lda: self.lda,
            _marker: PhantomData,
        }
    }

    /// Reborrows a mutable sub-view of size `nrows x ncols` at `(i, j)`.
    #[inline]
    pub fn submatrix_mut(
        &mut self,
        i: usize,
        j: usize,
        nrows: usize,
        ncols: usize,
    ) -> MatMut<'_, E> {
        assert!(
            i + nrows <= self.rows,
            "row window {i}+{nrows} out of {}",
            self.rows
        );
        assert!(
            j + ncols <= self.cols,
            "col window {j}+{ncols} out of {}",
            self.cols
        );
        MatMut {
            // SAFETY: `(i, j)` is inside the window by the asserts above,
            // and `&mut self` makes the reborrow exclusive.
            ptr: unsafe { self.ptr.add(j * self.lda + i) },
            rows: nrows,
            cols: ncols,
            lda: self.lda,
            _marker: PhantomData,
        }
    }

    /// Splits into non-overlapping `(left, right)` views at column `j`.
    #[inline]
    pub fn split_at_col(self, j: usize) -> (MatMut<'a, E>, MatMut<'a, E>) {
        assert!(j <= self.cols, "split col {j} out of {}", self.cols);
        // SAFETY: `j <= cols`, so column `j` starts inside (or one past)
        // the window; the two halves cover disjoint column ranges.
        let right_ptr = unsafe { self.ptr.add(j * self.lda) };
        (
            MatMut {
                ptr: self.ptr,
                rows: self.rows,
                cols: j,
                lda: self.lda,
                _marker: PhantomData,
            },
            MatMut {
                ptr: right_ptr,
                rows: self.rows,
                cols: self.cols - j,
                lda: self.lda,
                _marker: PhantomData,
            },
        )
    }

    /// Splits into non-overlapping `(top, bottom)` views at row `i`.
    ///
    /// The two views alias distinct rows of the same columns; the shared
    /// `lda` stride keeps them inside the original buffer but disjoint.
    #[inline]
    pub fn split_at_row(self, i: usize) -> (MatMut<'a, E>, MatMut<'a, E>) {
        assert!(i <= self.rows, "split row {i} out of {}", self.rows);
        // SAFETY: `i <= rows`, so the offset stays inside the first
        // column; the halves cover disjoint row ranges of every column.
        let bot_ptr = unsafe { self.ptr.add(i) };
        (
            MatMut {
                ptr: self.ptr,
                rows: i,
                cols: self.cols,
                lda: self.lda,
                _marker: PhantomData,
            },
            MatMut {
                ptr: bot_ptr,
                rows: self.rows - i,
                cols: self.cols,
                lda: self.lda,
                _marker: PhantomData,
            },
        )
    }

    /// Fills the whole view with `v`.
    pub fn fill(&mut self, v: E) {
        for j in 0..self.cols {
            self.col_mut(j).fill(v);
        }
    }
}

impl<E: Element> fmt::Debug for MatRef<'_, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "MatRef<{}> {}x{} (lda {})",
            E::NAME,
            self.rows,
            self.cols,
            self.lda
        )?;
        for i in 0..self.rows.min(8) {
            for j in 0..self.cols.min(8) {
                write!(f, "{:>12.5} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl<E: Element> fmt::Debug for MatMut<'_, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_ref().fmt(f)
    }
}

/// Owned column-major matrix (lda == rows), the workhorse for tests,
/// workspaces and local matrix storage.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix<E: Element = f64> {
    rows: usize,
    cols: usize,
    data: Vec<E>,
}

impl<E: Element> Matrix<E> {
    /// All-zeros `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![E::ZERO; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = E::ONE;
        }
        m
    }

    /// Builds from a column-major data vector; `data.len()` must be
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<E>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Builds element-wise from `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> E) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> E {
        self.data[j * self.rows + i]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: E) {
        self.data[j * self.rows + i] = v;
    }

    /// Column-major backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[E] {
        &self.data
    }

    /// Mutable column-major backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [E] {
        &mut self.data
    }

    /// Full immutable view.
    #[inline]
    pub fn view(&self) -> MatRef<'_, E> {
        MatRef::from_slice(&self.data, self.rows, self.cols, self.rows.max(1))
    }

    /// Full mutable view.
    #[inline]
    pub fn view_mut(&mut self) -> MatMut<'_, E> {
        let (rows, cols) = (self.rows, self.cols);
        MatMut::from_slice(&mut self.data, rows, cols, rows.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_roundtrip() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 10 + j) as f64);
        let v = m.view();
        assert_eq!(v.rows(), 3);
        assert_eq!(v.cols(), 4);
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(v.get(i, j), (i * 10 + j) as f64);
            }
        }
    }

    #[test]
    fn f32_views_share_the_generic_path() {
        let m: Matrix<f32> = Matrix::from_fn(3, 3, |i, j| (i + 10 * j) as f32);
        assert_eq!(m.view().get(2, 1), 12.0f32);
        let mut m = m;
        m.view_mut().set(0, 0, -1.5);
        assert_eq!(m.get(0, 0), -1.5f32);
        assert_eq!(Matrix::<f32>::identity(2).get(1, 1), 1.0f32);
    }

    #[test]
    fn submatrix_indexing() {
        let m = Matrix::from_fn(5, 5, |i, j| (i + 100 * j) as f64);
        let v = m.view();
        let s = v.submatrix(1, 2, 3, 2);
        assert_eq!(s.get(0, 0), (1 + 200) as f64);
        assert_eq!(s.get(2, 1), (3 + 300) as f64);
        assert_eq!(s.lda(), 5);
    }

    #[test]
    fn split_at_col_disjoint() {
        let mut m = Matrix::zeros(4, 6);
        let v = m.view_mut();
        let (mut l, mut r) = v.split_at_col(2);
        l.fill(1.0);
        r.fill(2.0);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(3, 2), 2.0);
        assert_eq!(m.get(0, 5), 2.0);
    }

    #[test]
    fn split_at_row_disjoint() {
        let mut m = Matrix::zeros(6, 3);
        let v = m.view_mut();
        let (mut t, mut b) = v.split_at_row(4);
        t.fill(7.0);
        b.fill(9.0);
        assert_eq!(m.get(3, 2), 7.0);
        assert_eq!(m.get(4, 0), 9.0);
    }

    #[test]
    fn col_slices_are_contiguous() {
        let mut m = Matrix::from_fn(4, 3, |i, j| (i + 10 * j) as f64);
        assert_eq!(m.view().col(1), &[10.0, 11.0, 12.0, 13.0]);
        m.view_mut().col_mut(2)[3] = -1.0;
        assert_eq!(m.get(3, 2), -1.0);
    }

    #[test]
    #[should_panic(expected = "buffer of len")]
    fn from_slice_rejects_short_buffer() {
        let data = vec![0.0; 10];
        let _ = MatRef::<f64>::from_slice(&data, 4, 3, 4);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn submatrix_out_of_bounds_panics() {
        let m = Matrix::<f64>::zeros(3, 3);
        let _ = m.view().submatrix(1, 1, 3, 1);
    }

    #[test]
    fn empty_views_are_fine() {
        let data: Vec<f64> = vec![];
        let v = MatRef::<f64>::from_slice(&data, 0, 0, 1);
        assert!(v.is_empty());
        let m = Matrix::<f64>::zeros(0, 5);
        assert!(m.view().is_empty());
    }

    #[test]
    fn identity_is_identity() {
        let m = Matrix::<f64>::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }
}
