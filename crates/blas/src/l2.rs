//! Level-2 BLAS kernels: rank-1 update, matrix-vector product, triangular
//! solve against a vector — generic over the pipeline [`Element`].

use crate::mat::{MatMut, MatRef};
use crate::Element;
use crate::{Diag, Trans, Uplo};

/// Rank-1 update `A <- A + alpha * x * y^T`.
///
/// `x.len() == A.rows()`, `y.len() == A.cols()`. This is the inner kernel of
/// the unblocked right-looking LU factorization.
pub fn dger<E: Element>(alpha: E, x: &[E], y: &[E], a: &mut MatMut<'_, E>) {
    assert_eq!(x.len(), a.rows(), "dger: x length mismatch");
    assert_eq!(y.len(), a.cols(), "dger: y length mismatch");
    if alpha == E::ZERO || a.is_empty() {
        return;
    }
    for j in 0..a.cols() {
        let ayj = alpha * y[j];
        if ayj == E::ZERO {
            continue;
        }
        let col = a.col_mut(j);
        for (ci, &xi) in col.iter_mut().zip(x) {
            *ci += ayj * xi;
        }
    }
}

/// Matrix-vector product `y <- alpha * op(A) * x + beta * y`.
pub fn dgemv<E: Element>(trans: Trans, alpha: E, a: MatRef<'_, E>, x: &[E], beta: E, y: &mut [E]) {
    let (m, n) = (a.rows(), a.cols());
    match trans {
        Trans::No => {
            assert_eq!(x.len(), n, "dgemv: x length mismatch");
            assert_eq!(y.len(), m, "dgemv: y length mismatch");
            if beta != E::ONE {
                for v in y.iter_mut() {
                    *v *= beta;
                }
            }
            for j in 0..n {
                let axj = alpha * x[j];
                if axj == E::ZERO {
                    continue;
                }
                let col = a.col(j);
                for (yi, &aij) in y.iter_mut().zip(col) {
                    *yi += axj * aij;
                }
            }
        }
        Trans::Yes => {
            assert_eq!(x.len(), m, "dgemv: x length mismatch");
            assert_eq!(y.len(), n, "dgemv: y length mismatch");
            for (j, yj) in y.iter_mut().enumerate() {
                let col = a.col(j);
                let mut s = E::ZERO;
                for (&aij, &xi) in col.iter().zip(x) {
                    s += aij * xi;
                }
                *yj = alpha * s + beta * *yj;
            }
        }
    }
}

/// Triangular solve `x <- op(A)^{-1} x` for a triangular `A`.
///
/// Used by the final back-substitution on the diagonal blocks.
pub fn dtrsv<E: Element>(uplo: Uplo, trans: Trans, diag: Diag, a: MatRef<'_, E>, x: &mut [E]) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "dtrsv: A must be square");
    assert_eq!(x.len(), n, "dtrsv: x length mismatch");
    match (uplo, trans) {
        (Uplo::Lower, Trans::No) => {
            // Forward substitution.
            for j in 0..n {
                if matches!(diag, Diag::NonUnit) {
                    x[j] /= a.get(j, j);
                }
                let xj = x[j];
                if xj != E::ZERO {
                    let col = a.col(j);
                    for i in j + 1..n {
                        x[i] -= xj * col[i];
                    }
                }
            }
        }
        (Uplo::Upper, Trans::No) => {
            // Backward substitution.
            for j in (0..n).rev() {
                if matches!(diag, Diag::NonUnit) {
                    x[j] /= a.get(j, j);
                }
                let xj = x[j];
                if xj != E::ZERO {
                    let col = a.col(j);
                    for (i, xi) in x.iter_mut().enumerate().take(j) {
                        *xi -= xj * col[i];
                    }
                }
            }
        }
        (Uplo::Lower, Trans::Yes) => {
            // Solve L^T x = b: backward over columns of L.
            for j in (0..n).rev() {
                let col = a.col(j);
                let mut s = x[j];
                for i in j + 1..n {
                    s -= col[i] * x[i];
                }
                x[j] = match diag {
                    Diag::Unit => s,
                    Diag::NonUnit => s / col[j],
                };
            }
        }
        (Uplo::Upper, Trans::Yes) => {
            // Solve U^T x = b: forward over columns of U.
            for j in 0..n {
                let col = a.col(j);
                let mut s = x[j];
                for (i, &xi) in x.iter().enumerate().take(j) {
                    s -= col[i] * xi;
                }
                x[j] = match diag {
                    Diag::Unit => s,
                    Diag::NonUnit => s / col[j],
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Matrix;

    #[test]
    fn dger_rank1() {
        let mut a = Matrix::zeros(3, 2);
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![10.0, 20.0];
        let mut v = a.view_mut();
        dger(0.5, &x, &y, &mut v);
        assert_eq!(a.get(0, 0), 5.0);
        assert_eq!(a.get(2, 1), 30.0);
    }

    #[test]
    fn dgemv_notrans() {
        // A = [[1, 2], [3, 4]]; y = A * [1, 1] = [3, 7].
        let a = Matrix::from_vec(2, 2, vec![1.0, 3.0, 2.0, 4.0]);
        let mut y = vec![100.0, 100.0];
        dgemv(Trans::No, 1.0, a.view(), &[1.0, 1.0], 0.0, &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn dgemv_trans() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 3.0, 2.0, 4.0]);
        let mut y = vec![0.0, 0.0];
        dgemv(Trans::Yes, 1.0, a.view(), &[1.0, 1.0], 0.0, &mut y);
        assert_eq!(y, vec![4.0, 6.0]); // A^T * [1,1]
    }

    #[test]
    fn l2_kernels_serve_f32() {
        let a = Matrix::<f32>::from_vec(2, 2, vec![1.0, 3.0, 2.0, 4.0]);
        let mut y = vec![0.0f32, 0.0];
        dgemv(Trans::No, 1.0f32, a.view(), &[1.0f32, 1.0], 0.0f32, &mut y);
        assert_eq!(y, vec![3.0f32, 7.0]);
        let mut b = Matrix::<f32>::zeros(2, 2);
        let mut bv = b.view_mut();
        dger(2.0f32, &[1.0, 2.0], &[10.0, 20.0], &mut bv);
        assert_eq!(b.get(1, 1), 80.0f32);
    }

    fn tri_lower(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if i > j {
                0.1 * (i as f64 + 1.0) + j as f64
            } else if i == j {
                2.0 + i as f64
            } else {
                0.0
            }
        })
    }

    #[test]
    fn dtrsv_lower_solves() {
        let n = 5;
        let l = tri_lower(n);
        let xtrue: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
        let mut b = vec![0.0; n];
        dgemv(Trans::No, 1.0, l.view(), &xtrue, 0.0, &mut b);
        dtrsv(Uplo::Lower, Trans::No, Diag::NonUnit, l.view(), &mut b);
        for (got, want) in b.iter().zip(&xtrue) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn dtrsv_upper_solves() {
        let n = 5;
        let l = tri_lower(n);
        // Use L^T as an upper-triangular matrix.
        let u = Matrix::from_fn(n, n, |i, j| l.get(j, i));
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 + 1.0).collect();
        let mut b = vec![0.0; n];
        dgemv(Trans::No, 1.0, u.view(), &xtrue, 0.0, &mut b);
        dtrsv(Uplo::Upper, Trans::No, Diag::NonUnit, u.view(), &mut b);
        for (got, want) in b.iter().zip(&xtrue) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn dtrsv_transposed_variants() {
        let n = 6;
        let l = tri_lower(n);
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 2.0).collect();
        // Solve L^T x = b where b = L^T xtrue.
        let mut b = vec![0.0; n];
        dgemv(Trans::Yes, 1.0, l.view(), &xtrue, 0.0, &mut b);
        dtrsv(Uplo::Lower, Trans::Yes, Diag::NonUnit, l.view(), &mut b);
        for (got, want) in b.iter().zip(&xtrue) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
        // Upper^T: U = L^T, solve U^T x = L x = b.
        let u = Matrix::from_fn(n, n, |i, j| l.get(j, i));
        let mut b2 = vec![0.0; n];
        dgemv(Trans::No, 1.0, l.view(), &xtrue, 0.0, &mut b2);
        dtrsv(Uplo::Upper, Trans::Yes, Diag::NonUnit, u.view(), &mut b2);
        for (got, want) in b2.iter().zip(&xtrue) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn dtrsv_unit_diag_ignores_diagonal() {
        let n = 4;
        // Store garbage on the diagonal; Diag::Unit must ignore it.
        let mut l = tri_lower(n);
        let mut lu = l.clone();
        for i in 0..n {
            l.set(i, i, 1.0);
            lu.set(i, i, 1234.5);
        }
        let xtrue = vec![1.0, -1.0, 2.0, 0.5];
        let mut b = vec![0.0; n];
        dgemv(Trans::No, 1.0, l.view(), &xtrue, 0.0, &mut b);
        dtrsv(Uplo::Lower, Trans::No, Diag::Unit, lu.view(), &mut b);
        for (got, want) in b.iter().zip(&xtrue) {
            assert!((got - want).abs() < 1e-12);
        }
    }
}
