//! A small deterministic discrete-event simulator: tasks with durations
//! and dependencies execute on exclusive resources (GPU queue, CPU, copy
//! engine, NIC), exactly the machine abstraction rocHPL schedules against.
//!
//! The analytic model in [`crate::schedule`] composes closed-form `max()`
//! expressions per iteration; this engine instead *derives* the overlap
//! from the dependency graph (see [`crate::des_hpl`]), which lets the tests
//! check that the paper's hiding claims emerge from the schedule structure
//! rather than being baked into a formula — and exposes effects the
//! closed form cannot, like contention between LBCAST and row-swap traffic
//! on a shared NIC (the paper's concern about Tan et al.'s approach).

use std::collections::BinaryHeap;

use serde::Serialize;

/// Identifies a resource registered with [`Des::resource`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub struct ResourceId(pub usize);

/// Identifies a task added with [`Des::task`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub struct TaskId(pub usize);

#[derive(Clone, Debug)]
struct TaskDef {
    label: String,
    resource: ResourceId,
    duration: f64,
    deps: Vec<TaskId>,
}

/// One executed task in the output trace.
#[derive(Clone, Debug, Serialize)]
pub struct TraceSpan {
    /// Task id.
    pub task: TaskId,
    /// Task label.
    pub label: String,
    /// Resource it ran on.
    pub resource: ResourceId,
    /// Start time (seconds).
    pub start: f64,
    /// End time (seconds).
    pub end: f64,
}

/// Result of a simulation run.
#[derive(Clone, Debug, Serialize)]
pub struct Trace {
    /// Executed spans, ordered by start time (ties by task id).
    pub spans: Vec<TraceSpan>,
    /// Completion time of the last task.
    pub makespan: f64,
    /// Per-resource busy time.
    pub busy: Vec<f64>,
}

impl Trace {
    /// The span of a task by id.
    pub fn span(&self, t: TaskId) -> &TraceSpan {
        self.spans
            .iter()
            .find(|s| s.task == t)
            .expect("task executed")
    }

    /// Busy fraction of a resource over the makespan.
    pub fn utilization(&self, r: ResourceId) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.busy[r.0] / self.makespan
    }
}

/// The simulator: build the graph with [`Des::resource`] / [`Des::task`],
/// then [`Des::run`].
#[derive(Default)]
pub struct Des {
    resources: Vec<String>,
    tasks: Vec<TaskDef>,
}

/// Priority-queue entry: earliest event first; ties broken by task id for
/// determinism.
#[derive(PartialEq)]
struct Ev(f64, usize);

impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap; NaN-free by construction.
        other
            .0
            .partial_cmp(&self.0)
            .expect("event times are finite (asserted at insertion)")
            .then_with(|| other.1.cmp(&self.1))
    }
}

impl Des {
    /// Creates an empty simulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an exclusive resource.
    pub fn resource(&mut self, name: impl Into<String>) -> ResourceId {
        self.resources.push(name.into());
        ResourceId(self.resources.len() - 1)
    }

    /// Resource name.
    pub fn resource_name(&self, r: ResourceId) -> &str {
        &self.resources[r.0]
    }

    /// Adds a task; `deps` must already exist (ids are creation-ordered,
    /// so cycles are unrepresentable).
    pub fn task(
        &mut self,
        resource: ResourceId,
        label: impl Into<String>,
        duration: f64,
        deps: &[TaskId],
    ) -> TaskId {
        let id = TaskId(self.tasks.len());
        for d in deps {
            assert!(d.0 < id.0, "dependencies must be earlier tasks");
        }
        assert!(duration >= 0.0 && duration.is_finite(), "bad duration");
        self.tasks.push(TaskDef {
            label: label.into(),
            resource,
            duration,
            deps: deps.to_vec(),
        });
        id
    }

    /// Executes the graph: a task becomes ready when all dependencies have
    /// finished; each resource runs one task at a time, picking the ready
    /// task that became ready first (ties by task id — i.e. submission
    /// order, like a GPU stream).
    pub fn run(&self) -> Trace {
        let n = self.tasks.len();
        let mut remaining: Vec<usize> = self.tasks.iter().map(|t| t.deps.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, t) in self.tasks.iter().enumerate() {
            for d in &t.deps {
                dependents[d.0].push(i);
            }
        }
        // Per-resource queue of ready tasks: (ready_time, id).
        let mut queues: Vec<BinaryHeap<Ev>> = (0..self.resources.len())
            .map(|_| BinaryHeap::new())
            .collect();
        let mut free_at: Vec<f64> = vec![0.0; self.resources.len()];
        let mut completions: BinaryHeap<Ev> = BinaryHeap::new();
        let mut start = vec![f64::NAN; n];
        let mut end = vec![f64::NAN; n];
        let mut running: Vec<Option<usize>> = vec![None; self.resources.len()];

        for (i, r) in remaining.iter().enumerate() {
            if *r == 0 {
                queues[self.tasks[i].resource.0].push(Ev(0.0, i));
            }
        }
        // Kick off whatever can start at t = 0.
        let mut done = 0usize;
        let mut now = 0.0f64;
        loop {
            // Start tasks on idle resources.
            for r in 0..self.resources.len() {
                if running[r].is_none() {
                    if let Some(Ev(ready, id)) = queues[r].pop() {
                        let s = now.max(ready).max(free_at[r]);
                        start[id] = s;
                        end[id] = s + self.tasks[id].duration;
                        running[r] = Some(id);
                        completions.push(Ev(end[id], id));
                    }
                }
            }
            // Advance to the next completion.
            let Some(Ev(t, id)) = completions.pop() else {
                break;
            };
            now = t;
            let r = self.tasks[id].resource.0;
            free_at[r] = t;
            running[r] = None;
            done += 1;
            for &dep in &dependents[id] {
                remaining[dep] -= 1;
                if remaining[dep] == 0 {
                    queues[self.tasks[dep].resource.0].push(Ev(t, dep));
                }
            }
        }
        assert_eq!(done, n, "dependency graph has unreachable tasks");
        let mut spans: Vec<TraceSpan> = (0..n)
            .map(|i| TraceSpan {
                task: TaskId(i),
                label: self.tasks[i].label.clone(),
                resource: self.tasks[i].resource,
                start: start[i],
                end: end[i],
            })
            .collect();
        spans.sort_by(|a, b| {
            let ord = a
                .start
                .partial_cmp(&b.start)
                .expect("span times are finite");
            ord.then(a.task.0.cmp(&b.task.0))
        });
        let makespan = spans.iter().map(|s| s.end).fold(0.0, f64::max);
        let mut busy = vec![0.0; self.resources.len()];
        for s in &spans {
            busy[s.resource.0] += s.end - s.start;
        }
        Trace {
            spans,
            makespan,
            busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_chain_sums_durations() {
        let mut d = Des::new();
        let cpu = d.resource("cpu");
        let a = d.task(cpu, "a", 1.0, &[]);
        let b = d.task(cpu, "b", 2.0, &[a]);
        let c = d.task(cpu, "c", 3.0, &[b]);
        let t = d.run();
        assert_eq!(t.makespan, 6.0);
        assert_eq!(t.span(c).start, 3.0);
    }

    #[test]
    fn independent_tasks_on_different_resources_overlap() {
        let mut d = Des::new();
        let r1 = d.resource("a");
        let r2 = d.resource("b");
        d.task(r1, "x", 5.0, &[]);
        d.task(r2, "y", 4.0, &[]);
        let t = d.run();
        assert_eq!(t.makespan, 5.0);
        assert!((t.utilization(r2) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn shared_resource_serializes() {
        let mut d = Des::new();
        let r = d.resource("gpu");
        d.task(r, "x", 2.0, &[]);
        d.task(r, "y", 2.0, &[]);
        let t = d.run();
        assert_eq!(t.makespan, 4.0);
        assert_eq!(t.utilization(r), 1.0);
    }

    #[test]
    fn diamond_dependency() {
        let mut d = Des::new();
        let r1 = d.resource("a");
        let r2 = d.resource("b");
        let top = d.task(r1, "top", 1.0, &[]);
        let left = d.task(r1, "left", 3.0, &[top]);
        let right = d.task(r2, "right", 5.0, &[top]);
        let bottom = d.task(r1, "bottom", 1.0, &[left, right]);
        let t = d.run();
        // bottom starts when right (the slow arm) finishes: 1 + 5 = 6.
        assert_eq!(t.span(bottom).start, 6.0);
        assert_eq!(t.makespan, 7.0);
    }

    #[test]
    fn fifo_order_on_a_resource_is_submission_order_for_equal_ready_times() {
        let mut d = Des::new();
        let r = d.resource("stream");
        let ids: Vec<TaskId> = (0..5)
            .map(|i| d.task(r, format!("k{i}"), 1.0, &[]))
            .collect();
        let t = d.run();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(t.span(*id).start, i as f64);
        }
    }

    #[test]
    fn zero_duration_tasks_propagate_instantly() {
        let mut d = Des::new();
        let r = d.resource("x");
        let a = d.task(r, "a", 0.0, &[]);
        let b = d.task(r, "b", 2.0, &[a]);
        let t = d.run();
        assert_eq!(t.span(b).start, 0.0);
        assert_eq!(t.makespan, 2.0);
    }

    #[test]
    fn ready_time_beats_submission_order() {
        // y is submitted later but becomes ready earlier than z.
        let mut d = Des::new();
        let slow = d.resource("slow");
        let fast = d.resource("fast");
        let gate = d.task(slow, "gate", 10.0, &[]);
        let z = d.task(fast, "z", 1.0, &[gate]);
        let y = d.task(fast, "y", 1.0, &[]);
        let t = d.run();
        assert!(t.span(y).start < t.span(z).start);
    }

    #[test]
    #[should_panic(expected = "dependencies must be earlier tasks")]
    fn forward_dependency_rejected() {
        let mut d = Des::new();
        let r = d.resource("x");
        let _ = d.task(r, "a", 1.0, &[TaskId(5)]);
    }

    #[test]
    fn determinism() {
        let build = || {
            let mut d = Des::new();
            let g = d.resource("gpu");
            let c = d.resource("cpu");
            let mut prev: Option<TaskId> = None;
            for i in 0..50 {
                let dur = 0.5 + (i % 7) as f64 * 0.1;
                let deps: Vec<TaskId> = prev.into_iter().collect();
                let a = d.task(g, format!("g{i}"), dur, &deps);
                let b = d.task(c, format!("c{i}"), dur * 0.4, &[a]);
                prev = Some(b);
            }
            d.run()
        };
        let t1 = build();
        let t2 = build();
        assert_eq!(t1.makespan, t2.makespan);
        for (a, b) in t1.spans.iter().zip(&t2.spans) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.task, b.task);
        }
    }
}
