//! Node and run configuration: the Frontier/Crusher node constants and the
//! HPL run parameters the schedule model consumes.

use serde::Serialize;

use crate::cpu::FactModel;
use crate::gpu::{DgemmModel, HbmModel};
use crate::link::LinkModel;

/// Hardware description of one node.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct NodeModel {
    /// GPU dies per node (Frontier: 4 MI250X = 8 GCDs).
    pub gcds: usize,
    /// CPU cores per node.
    pub cores: usize,
    /// Usable HBM per GCD (bytes); 64 GB nominal minus runtime overheads.
    pub hbm_per_gcd: f64,
    /// DGEMM throughput model of one GCD.
    pub dgemm: DgemmModel,
    /// Bandwidth-bound kernel model of one GCD.
    pub hbm: HbmModel,
    /// CPU panel-factorization model.
    pub fact: FactModel,
    /// GCD <-> GCD on-node link.
    pub fabric: LinkModel,
    /// Host <-> GCD link.
    pub host_link: LinkModel,
    /// Per-GCD share of the NIC for inter-node traffic.
    pub nic: LinkModel,
}

impl Default for NodeModel {
    fn default() -> Self {
        Self {
            gcds: 8,
            cores: 64,
            hbm_per_gcd: 60.0e9,
            dgemm: DgemmModel::default(),
            hbm: HbmModel::default(),
            fact: FactModel::default(),
            fabric: LinkModel::infinity_fabric(),
            host_link: LinkModel::host_link(),
            nic: LinkModel::slingshot_per_gcd(),
        }
    }
}

impl NodeModel {
    /// The Frontier/Crusher node.
    pub fn frontier() -> Self {
        Self::default()
    }

    /// A hypothetical next-generation node per the paper's discussion:
    /// "the improvement of computational throughput outpaces inter-process
    /// communication performance". `compute_gen` doublings of GPU compute
    /// (matrix engines + HBM bandwidth, which historically track each
    /// other) against `net_gen` doublings of every link — while CPU speed,
    /// communication latency and HBM *capacity* stay put, which is exactly
    /// the imbalance the paper warns shifts HPL into its latency- and
    /// communication-dominated regime.
    pub fn future(compute_gen: u32, net_gen: u32) -> Self {
        let c = 2.0f64.powi(compute_gen as i32);
        let w = 2.0f64.powi(net_gen as i32);
        let mut n = Self::frontier();
        n.dgemm.peak *= c;
        n.hbm.bandwidth *= c;
        n.fabric.bandwidth *= w;
        n.host_link.bandwidth *= w;
        n.nic.bandwidth *= w;
        n
    }

    /// Largest `N` such that the distributed `N x N` FP64 matrix plus ~10%
    /// workspace fits in the GCDs' HBM across `nodes` nodes.
    pub fn fill_hbm_n(&self, nodes: usize) -> usize {
        let total = self.hbm_per_gcd * (self.gcds * nodes) as f64;
        let usable = total / 1.1;
        let n = (usable / 8.0).sqrt().floor() as usize;
        // Round down to a multiple of a typical NB for tidy iteration counts.
        n - n % 512
    }
}

/// HPL run parameters for the model.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct RunParams {
    /// Global problem size.
    pub n: usize,
    /// Blocking factor.
    pub nb: usize,
    /// Global process rows.
    pub p: usize,
    /// Global process columns.
    pub q: usize,
    /// Node-local process rows (for core time sharing and link selection).
    pub local_p: usize,
    /// Node-local process columns.
    pub local_q: usize,
    /// Number of nodes.
    pub nodes: usize,
    /// Fraction of local columns in the split update's right section
    /// (0 disables the split).
    pub split_frac: f64,
    /// Whether look-ahead is enabled (it always is in rocHPL; the ablation
    /// benches turn it off).
    pub lookahead: bool,
}

impl RunParams {
    /// The paper's single-node configuration (§IV.A): `N = 256000`,
    /// `NB = 512`, `P x Q = 4 x 2`, 50-50 split.
    pub fn paper_single_node() -> Self {
        Self {
            n: 256_000,
            nb: 512,
            p: 4,
            q: 2,
            local_p: 4,
            local_q: 2,
            nodes: 1,
            split_frac: 0.5,
            lookahead: true,
        }
    }

    /// The paper's multi-node configuration (§IV.B) for a given node count
    /// (power of two): grid kept square or 2:1, node-local grid maximizing
    /// process columns (1 x 8 once `Q >= 8`), `N` filling HBM.
    pub fn paper_multi_node(node: &NodeModel, nodes: usize) -> Self {
        assert!(nodes.is_power_of_two(), "paper scales by powers of two");
        let ranks = nodes * node.gcds;
        // Square or 2:1 grid with P >= Q.
        let mut q = (ranks as f64).sqrt() as usize;
        while !ranks.is_multiple_of(q) {
            q -= 1;
        }
        let p = ranks / q;
        let (p, q) = if p >= q { (p, q) } else { (q, p) };
        // Node-local grid: maximize columns up to 8.
        let local_q = q.min(node.gcds);
        let local_p = node.gcds / local_q;
        Self {
            n: node.fill_hbm_n(nodes),
            nb: 512,
            p,
            q,
            local_p,
            local_q,
            nodes,
            split_frac: 0.5,
            lookahead: true,
        }
    }

    /// HPL's FLOP count.
    pub fn flops(&self) -> f64 {
        let n = self.n as f64;
        2.0 / 3.0 * n * n * n + 1.5 * n * n
    }

    /// Number of panel iterations.
    pub fn iterations(&self) -> usize {
        self.n.div_ceil(self.nb)
    }

    /// FACT threads per rank under §III.B time sharing.
    pub fn fact_threads(&self, node: &NodeModel) -> usize {
        let ranks_local = self.local_p * self.local_q;
        let pool = node.cores.saturating_sub(ranks_local);
        1 + pool / self.local_p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_hbm_matches_paper_single_node() {
        // Paper: N = 256000 "effectively fills the HBM capacity" of 4
        // MI250X (8 GCDs): 256000^2 * 8B = 524 GB of 512 GB nominal; our
        // usable-capacity model lands within 10% of the paper's N.
        let node = NodeModel::frontier();
        let n = node.fill_hbm_n(1);
        assert!(
            (n as f64 - 256_000.0).abs() / 256_000.0 < 0.12,
            "fill N = {n}"
        );
    }

    #[test]
    fn paper_single_node_params() {
        let p = RunParams::paper_single_node();
        assert_eq!(p.iterations(), 500);
        assert_eq!(p.fact_threads(&NodeModel::frontier()), 1 + 56 / 4);
    }

    #[test]
    fn multi_node_grids_stay_square_or_2to1() {
        let node = NodeModel::frontier();
        for nodes in [1usize, 2, 4, 8, 16, 32, 64, 128] {
            let p = RunParams::paper_multi_node(&node, nodes);
            assert_eq!(p.p * p.q, nodes * 8);
            let ratio = p.p as f64 / p.q as f64;
            assert!(
                (1.0..=2.0).contains(&ratio),
                "nodes={nodes}: {}x{}",
                p.p,
                p.q
            );
            assert_eq!(p.local_p * p.local_q, 8);
            if p.q >= 8 {
                assert_eq!((p.local_p, p.local_q), (1, 8), "nodes={nodes}");
            }
        }
    }

    #[test]
    fn weak_scaling_grows_n_by_sqrt2_per_doubling() {
        let node = NodeModel::frontier();
        let n1 = RunParams::paper_multi_node(&node, 1).n as f64;
        let n4 = RunParams::paper_multi_node(&node, 4).n as f64;
        assert!((n4 / n1 - 2.0).abs() < 0.05);
    }
}
