//! # hpl-sim
//!
//! A calibrated analytic performance model of HPL on GPU-accelerated
//! exascale nodes — the substitution this reproduction makes for the
//! MI250X GPUs, Infinity Fabric, and Slingshot network the paper measures
//! on Crusher/Frontier (see DESIGN.md §2).
//!
//! The functional algorithm lives in `rhpl-core` and really executes; this
//! crate prices the *same schedule* (look-ahead pipeline of Fig 3, split
//! update of Fig 6) with hardware models anchored to the paper's published
//! rates (49 TFLOPS DGEMM per MI250X at `NB = 512`, 200 Gb/s NICs, 64-core
//! EPYC FACT throughput), which regenerates the shapes of Fig 7 (two-regime
//! per-iteration breakdown, 153 TFLOPS single node) and Fig 8 (>90% weak
//! scaling to 128 nodes, 17.75 PFLOPS).
//!
//! Quick map:
//! * [`gpu`] — DGEMM efficiency surface + HBM kernel model.
//! * [`cpu`] — multithreaded FACT throughput (the Fig 5 surface).
//! * [`link`] — alpha-beta links and collective cost models.
//! * [`node`] — the Frontier node, HBM-filling problem sizes, §III.B
//!   thread counts.
//! * [`schedule`] — per-iteration pipeline composition (Figs 3/6/7).
//! * [`cluster`] — weak scaling (Fig 8).
//! * [`timeline`] — ASCII Gantt rendering of one iteration.

// Lint policy: indexed loops are used deliberately where they mirror the
// reference BLAS/HPL loop structure, and several kernels take the full
// argument list their BLAS counterparts do.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::too_many_arguments)]

pub mod cluster;
pub mod cpu;
pub mod des;
pub mod des_hpl;
pub mod gpu;
pub mod link;
pub mod node;
pub mod schedule;
pub mod timeline;

pub use cluster::{weak_scaling, ScalePoint};
pub use cpu::FactModel;
pub use des::{Des, ResourceId, TaskId, Trace, TraceSpan};
pub use des_hpl::{simulate_des, DesResult};
pub use gpu::{DgemmModel, HbmModel};
pub use link::{CollectiveModel, LinkModel};
pub use node::{NodeModel, RunParams};
pub use schedule::{IterRecord, Phases, Pipeline, SimResult, Simulator};
pub use timeline::{iteration_spans, render, Span};
