//! CPU panel-factorization performance model (the Fig 5 curves).
//!
//! The multi-threaded FACT of §III.A is modeled as a saturating-throughput
//! surface: `T` threads deliver `g1 * T^s` GFLOPS asymptotically (sublinear
//! in `T` because of the per-column pivot barriers), reached only once the
//! panel has enough rows per thread — the half-saturation row count grows
//! with `T`. This reproduces Fig 5's qualitative content: all curves rise
//! with `M`, they are ordered by thread count, and even small `M` benefits
//! from many cores (the curves do not cross back).

use serde::Serialize;

/// Panel factorization throughput model.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct FactModel {
    /// Single-core sustained GFLOPS on a large panel.
    pub g1: f64,
    /// Thread-scaling exponent (`T^s`).
    pub s: f64,
    /// Rows at which a single-core run reaches half its asymptote.
    pub m_half_base: f64,
    /// Extra half-saturation rows added per thread.
    pub m_half_per_thread: f64,
    /// Fixed serial cost per factored column (pivot barrier + swap).
    pub col_overhead: f64,
    /// Tile height of the round-robin distribution (Fig 4): a panel with
    /// `m` rows has `ceil(m / tile_rows)` tiles, capping usable threads.
    pub tile_rows: f64,
}

impl Default for FactModel {
    fn default() -> Self {
        // Zen 3 core: 16 FP64 FLOP/cycle at ~3.5 GHz = 56 GFLOPS peak; the
        // recursive factorization's small GEMMs (BLIS) sustain ~30% on one
        // core once the panel is tall enough.
        Self {
            g1: 16.0,
            s: 0.80,
            m_half_base: 300.0,
            m_half_per_thread: 250.0,
            col_overhead: 9e-6,
            tile_rows: 512.0,
        }
    }
}

impl FactModel {
    /// Floating-point operations of an `m x nb` LU panel factorization.
    pub fn flops(m: f64, nb: f64) -> f64 {
        if m <= 0.0 || nb <= 0.0 {
            return 0.0;
        }
        (m * nb * nb - nb * nb * nb / 3.0).max(0.0)
    }

    /// Sustained GFLOPS factoring an `m x nb` panel with `t` threads.
    pub fn gflops(&self, t: usize, m: f64) -> f64 {
        if m <= 0.0 || t == 0 {
            return 0.0;
        }
        // Threads beyond the tile count have no tiles to own and idle.
        let tiles = (m / self.tile_rows).ceil().max(1.0);
        let tf = (t as f64).min(tiles);
        let asymptote = self.g1 * tf.powf(self.s);
        let m_half = self.m_half_base + self.m_half_per_thread * tf;
        asymptote * m / (m + m_half)
    }

    /// Wall time to factor an `m x nb` panel with `t` threads (local
    /// compute only; the distributed pivot collectives are priced by the
    /// schedule model).
    pub fn time(&self, t: usize, m: f64, nb: f64) -> f64 {
        let f = Self::flops(m, nb);
        if f <= 0.0 {
            return 0.0;
        }
        f / (self.gflops(t, m) * 1e9) + nb * self.col_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_are_ordered_by_thread_count() {
        // Ordering is strict while threads have tiles to own; once `t`
        // exceeds the tile count the curves merge (Fig 5's leftmost
        // points), so the requirement weakens to non-decreasing.
        let f = FactModel::default();
        for m in [512.0f64, 2048.0, 8192.0, 32768.0, 131072.0] {
            let tiles = (m / 512.0).ceil() as usize;
            let mut prev = 0.0;
            for t in [1usize, 2, 4, 8, 16, 32, 64] {
                let g = f.gflops(t, m);
                if t <= tiles {
                    assert!(g > prev, "t={t} m={m}: {g} <= {prev}");
                } else {
                    assert!(g >= prev - 1e-12, "t={t} m={m}: {g} < {prev}");
                }
                prev = g;
            }
        }
    }

    #[test]
    fn many_cores_help_even_small_panels() {
        // Paper: "using large numbers of CPU cores benefits performance for
        // even the relatively small problem sizes". With 16 tiles (M =
        // 16 NB) the 64-core configuration already beats 8 cores, and it
        // never does worse at any size.
        let f = FactModel::default();
        assert!(f.gflops(64, 16.0 * 512.0) > f.gflops(8, 16.0 * 512.0));
        for m in [512.0, 1024.0, 4096.0] {
            assert!(f.gflops(64, m) >= f.gflops(8, m) - 1e-12, "m={m}");
        }
    }

    #[test]
    fn throughput_rises_with_m_and_saturates() {
        let f = FactModel::default();
        let g_small = f.gflops(64, 1024.0);
        let g_mid = f.gflops(64, 16384.0);
        let g_big = f.gflops(64, 131072.0);
        assert!(g_small < g_mid && g_mid < g_big);
        // Saturation: doubling M from huge gains little.
        let g_huge = f.gflops(64, 262144.0);
        assert!((g_huge - g_big) / g_big < 0.1);
    }

    #[test]
    fn flops_formula_matches_summation() {
        // Sum_k 2 (m-k-1)(nb-k-1) + (m-k-1) over k=0..nb, roughly.
        let (m, nb) = (4096.0, 128.0);
        let exact: f64 = (0..128)
            .map(|k| {
                let mk = m - k as f64 - 1.0;
                let nk = nb - k as f64 - 1.0;
                2.0 * mk * nk + mk
            })
            .sum();
        let approx = FactModel::flops(m, nb);
        assert!((exact - approx).abs() / exact < 0.05, "{exact} vs {approx}");
    }
}
