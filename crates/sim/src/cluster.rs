//! Multi-node weak scaling (paper Fig 8): runs the schedule model at the
//! paper's node counts and reports scores against perfect scaling.

use serde::Serialize;

use crate::node::{NodeModel, RunParams};
use crate::schedule::{Pipeline, Simulator};

/// One point of the weak-scaling study.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ScalePoint {
    /// Node count.
    pub nodes: usize,
    /// Problem size used (HBM-filling).
    pub n: usize,
    /// Global grid.
    pub p: usize,
    /// Global grid.
    pub q: usize,
    /// Achieved score (TFLOPS).
    pub tflops: f64,
    /// Perfect scaling from the single-node score (TFLOPS).
    pub ideal_tflops: f64,
    /// Weak-scaling efficiency.
    pub efficiency: f64,
}

/// Simulates the Fig 8 sweep over `node_counts` (powers of two).
pub fn weak_scaling(node: &NodeModel, node_counts: &[usize]) -> Vec<ScalePoint> {
    let base = Simulator::new(*node, RunParams::paper_multi_node(node, 1))
        .run(Pipeline::SplitUpdate)
        .tflops;
    node_counts
        .iter()
        .map(|&nodes| {
            let params = RunParams::paper_multi_node(node, nodes);
            let r = Simulator::new(*node, params).run(Pipeline::SplitUpdate);
            let ideal = base * nodes as f64;
            ScalePoint {
                nodes,
                n: params.n,
                p: params.p,
                q: params.q,
                tflops: r.tflops,
                ideal_tflops: ideal,
                efficiency: r.tflops / ideal,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_matches_paper_fig8() {
        // Paper: 153 TF on one node -> 17.75 PF on 128 nodes, > 90%
        // weak-scaling efficiency.
        let node = NodeModel::frontier();
        let pts = weak_scaling(&node, &[1, 2, 4, 8, 16, 32, 64, 128]);
        assert_eq!(pts[0].efficiency, 1.0);
        for p in &pts {
            assert!(
                p.efficiency > 0.88,
                "nodes={}: efficiency {:.3}",
                p.nodes,
                p.efficiency
            );
            assert!(p.efficiency <= 1.001);
        }
        let last = pts.last().unwrap();
        assert_eq!(last.nodes, 128);
        // 128-node score in the paper: 17.75 PFLOPS.
        assert!(
            (15_000.0..20_000.0).contains(&last.tflops),
            "128-node score {:.0} TF",
            last.tflops
        );
    }

    #[test]
    fn efficiency_declines_with_scale() {
        let node = NodeModel::frontier();
        let pts = weak_scaling(&node, &[1, 8, 128]);
        assert!(pts[1].efficiency <= pts[0].efficiency + 1e-9);
        assert!(pts[2].efficiency <= pts[1].efficiency + 1e-9);
    }
}
