//! Interconnect models: latency + bandwidth links and the cost of the
//! collective algorithms HPL runs over them.

use serde::Serialize;

/// A simple alpha-beta link: `time(bytes) = latency + bytes / bandwidth`.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct LinkModel {
    /// Per-message latency (seconds).
    pub latency: f64,
    /// Sustained bandwidth (bytes/s).
    pub bandwidth: f64,
}

impl LinkModel {
    /// Frontier node: Infinity Fabric between GCDs (50 GB/s per direction,
    /// ~1.3 us software latency).
    pub fn infinity_fabric() -> Self {
        Self {
            latency: 1.3e-6,
            bandwidth: 50.0e9,
        }
    }

    /// Host <-> GCD link (~36 GB/s effective, per the MI250X host
    /// interface).
    pub fn host_link() -> Self {
        Self {
            latency: 4.0e-6,
            bandwidth: 36.0e9,
        }
    }

    /// HPE Slingshot NIC: 200 Gb/s = 25 GB/s per MI250X, shared by its two
    /// GCDs.
    pub fn slingshot_per_gcd() -> Self {
        Self {
            latency: 1.7e-6,
            bandwidth: 12.5e9,
        }
    }

    /// Message time.
    pub fn time(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        self.latency + bytes / self.bandwidth
    }
}

/// Critical-path cost models of the collectives, parameterized by the link.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct CollectiveModel {
    /// The link used between participating ranks.
    pub link: LinkModel,
}

impl CollectiveModel {
    /// One-ring broadcast of `bytes` among `p` ranks: the last rank
    /// receives after `p - 1` store-and-forward hops.
    pub fn bcast_1ring(&self, p: usize, bytes: f64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p - 1) as f64 * self.link.time(bytes)
    }

    /// Modified one-ring: critical path to the *next panel owner* is one
    /// hop; the full broadcast completes after `p - 1` hops but the pipeline
    /// only waits on the root's two sends plus the tail ring. We report the
    /// completion of the slowest rank.
    pub fn bcast_1ring_m(&self, p: usize, bytes: f64) -> f64 {
        match p {
            0 | 1 => 0.0,
            2 => self.link.time(bytes),
            // root sends twice (serialized), then p-3 forwards.
            _ => 2.0 * self.link.time(bytes) + (p - 3) as f64 * self.link.time(bytes),
        }
    }

    /// Scatter+ring-allgather ("long") broadcast: `2 (p-1)/p` of the volume
    /// at full bandwidth plus `p` latencies.
    pub fn bcast_long(&self, p: usize, bytes: f64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let pf = p as f64;
        2.0 * (pf - 1.0) / pf * bytes / self.link.bandwidth + pf * self.link.latency
    }

    /// Per-iteration critical-path cost of a *pipelined* modified ring
    /// broadcast: across HPL iterations the forwarding of earlier panels
    /// overlaps later factorizations, and the root's sends are DMA-driven,
    /// so steady-state the chain only waits for the next panel owner's
    /// single-hop receive — exactly why rocHPL defaults to the modified
    /// ring.
    pub fn bcast_ring_pipelined(&self, p: usize, bytes: f64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        self.link.time(bytes)
    }

    /// Binomial-tree broadcast/reduce: `ceil(log2 p)` message steps.
    pub fn binomial(&self, p: usize, bytes: f64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p as f64).log2().ceil() * self.link.time(bytes)
    }

    /// Allreduce (reduce + bcast, both binomial) of `bytes`.
    pub fn allreduce(&self, p: usize, bytes: f64) -> f64 {
        2.0 * self.binomial(p, bytes)
    }

    /// Scatterv of `p - 1` chunks of `chunk_bytes` from one root
    /// (serialized sends on the root's link).
    pub fn scatterv(&self, p: usize, chunk_bytes: f64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p - 1) as f64 * self.link.time(chunk_bytes)
    }

    /// Ring allgatherv of a total of `bytes` distributed over `p` ranks:
    /// `p - 1` steps of `bytes / p` each.
    pub fn allgatherv(&self, p: usize, bytes: f64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let pf = p as f64;
        (pf - 1.0) * self.link.time(bytes / pf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_time_is_affine() {
        let l = LinkModel {
            latency: 1e-6,
            bandwidth: 1e9,
        };
        assert_eq!(l.time(0.0), 0.0);
        assert!((l.time(1e9) - (1.0 + 1e-6)).abs() < 1e-9);
    }

    #[test]
    fn long_beats_ring_for_large_messages() {
        let c = CollectiveModel {
            link: LinkModel::infinity_fabric(),
        };
        let big = 100e6;
        assert!(c.bcast_long(8, big) < c.bcast_1ring(8, big));
        // And loses for tiny messages (latency-dominated).
        let tiny = 64.0;
        assert!(c.bcast_long(8, tiny) > c.binomial(8, tiny));
    }

    #[test]
    fn modified_ring_serializes_root_sends() {
        let c = CollectiveModel {
            link: LinkModel::infinity_fabric(),
        };
        let b = 1e6;
        // Same asymptotic hop count as the plain ring.
        let plain = c.bcast_1ring(8, b);
        let modif = c.bcast_1ring_m(8, b);
        assert!((plain - modif).abs() / plain < 0.01);
    }

    #[test]
    fn collectives_are_free_on_one_rank() {
        let c = CollectiveModel {
            link: LinkModel::infinity_fabric(),
        };
        for f in [
            CollectiveModel::bcast_1ring,
            CollectiveModel::bcast_1ring_m,
            CollectiveModel::bcast_long,
            CollectiveModel::binomial,
            CollectiveModel::scatterv,
            CollectiveModel::allgatherv,
        ] {
            assert_eq!(f(&c, 1, 1e6), 0.0);
        }
    }
}
