//! ASCII Gantt rendering of one iteration's schedule — regenerates the
//! *structure* of the paper's Fig 3 (look-ahead) and Fig 6 (split update)
//! timeline diagrams from the priced phase model.

use crate::schedule::{Phases, Pipeline, Simulator};

/// A labelled span on one of the timeline's resource rows.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Resource row: "GPU", "CPU", "MPI" or "XFER".
    pub row: &'static str,
    /// Phase label.
    pub label: &'static str,
    /// Start offset within the iteration (seconds).
    pub start: f64,
    /// Duration (seconds).
    pub len: f64,
}

/// Builds the span list of one iteration under `pipeline`.
pub fn iteration_spans(sim: &Simulator, it: usize, pipeline: Pipeline) -> Vec<Span> {
    let ph = sim.phases(it, pipeline);
    match pipeline {
        Pipeline::SplitUpdate => split_spans(&ph),
        _ => lookahead_spans(&ph),
    }
}

fn lookahead_spans(ph: &Phases) -> Vec<Span> {
    // Fig 3: RS (exposed), then UPDATE_LA; CPU chain under UPDATE_REST.
    let mut v = Vec::new();
    let mut t = 0.0;
    v.push(Span {
        row: "MPI",
        label: "RS",
        start: t,
        len: ph.rs1_comm,
    });
    t += ph.rs1_comm;
    v.push(Span {
        row: "GPU",
        label: "RS kernels",
        start: t,
        len: ph.rs_kernels,
    });
    t += ph.rs_kernels;
    v.push(Span {
        row: "GPU",
        label: "UPDATE_LA",
        start: t,
        len: ph.up_la,
    });
    t += ph.up_la;
    let rest = ph.up_left + ph.up_right;
    v.push(Span {
        row: "GPU",
        label: "UPDATE",
        start: t,
        len: rest,
    });
    let mut c = t;
    v.push(Span {
        row: "XFER",
        label: "D2H",
        start: c,
        len: ph.transfer / 2.0,
    });
    c += ph.transfer / 2.0;
    v.push(Span {
        row: "CPU",
        label: "FACT",
        start: c,
        len: ph.fact_cpu + ph.fact_comm,
    });
    c += ph.fact_cpu + ph.fact_comm;
    v.push(Span {
        row: "XFER",
        label: "H2D",
        start: c,
        len: ph.transfer / 2.0,
    });
    c += ph.transfer / 2.0;
    v.push(Span {
        row: "MPI",
        label: "LBCAST",
        start: c,
        len: ph.lbcast,
    });
    v
}

fn split_spans(ph: &Phases) -> Vec<Span> {
    // Fig 6: scatter RS2, update LA, then UPDATE2 over {chain + RS1},
    // then UPDATE1 over RS2'.
    let mut v = Vec::new();
    let mut t = 0.0;
    v.push(Span {
        row: "GPU",
        label: "RS kernels",
        start: t,
        len: ph.rs_kernels,
    });
    t += ph.rs_kernels;
    v.push(Span {
        row: "GPU",
        label: "UPDATE_LA",
        start: t,
        len: ph.up_la,
    });
    t += ph.up_la;
    v.push(Span {
        row: "GPU",
        label: "UPDATE2",
        start: t,
        len: ph.up_right,
    });
    let mut c = t;
    v.push(Span {
        row: "XFER",
        label: "D2H",
        start: c,
        len: ph.transfer / 2.0,
    });
    c += ph.transfer / 2.0;
    v.push(Span {
        row: "CPU",
        label: "FACT",
        start: c,
        len: ph.fact_cpu + ph.fact_comm,
    });
    c += ph.fact_cpu + ph.fact_comm;
    v.push(Span {
        row: "XFER",
        label: "H2D",
        start: c,
        len: ph.transfer / 2.0,
    });
    c += ph.transfer / 2.0;
    v.push(Span {
        row: "MPI",
        label: "LBCAST",
        start: c,
        len: ph.lbcast,
    });
    c += ph.lbcast;
    v.push(Span {
        row: "MPI",
        label: "RS1",
        start: c,
        len: ph.rs1_comm,
    });
    let t2 = t + ph.up_right.max(c + ph.rs1_comm - t);
    v.push(Span {
        row: "GPU",
        label: "UPDATE1",
        start: t2,
        len: ph.up_left,
    });
    v.push(Span {
        row: "MPI",
        label: "RS2'",
        start: t2,
        len: ph.rs2_comm,
    });
    v
}

/// Renders spans as a fixed-width ASCII Gantt chart.
pub fn render(spans: &[Span], width: usize) -> String {
    let end = spans.iter().map(|s| s.start + s.len).fold(0.0, f64::max);
    if end <= 0.0 {
        return String::new();
    }
    let rows = ["GPU", "CPU", "XFER", "MPI"];
    let mut out = String::new();
    out.push_str(&format!("iteration span: {:.3} ms\n", end * 1e3));
    for row in rows {
        let mut line = vec![b' '; width];
        let mut labels: Vec<(usize, &str)> = Vec::new();
        for s in spans.iter().filter(|s| s.row == row && s.len > 0.0) {
            let a = ((s.start / end) * width as f64) as usize;
            let b = (((s.start + s.len) / end) * width as f64).ceil() as usize;
            for c in line.iter_mut().take(b.min(width)).skip(a.min(width)) {
                *c = b'#';
            }
            labels.push((a, s.label));
        }
        out.push_str(&format!("{row:>5} |{}|", String::from_utf8_lossy(&line)));
        out.push_str("  ");
        labels.sort_by_key(|&(a, _)| a);
        let names: Vec<&str> = labels.iter().map(|&(_, l)| l).collect();
        out.push_str(&names.join(", "));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeModel, RunParams};

    fn sim() -> Simulator {
        Simulator::new(NodeModel::frontier(), RunParams::paper_single_node())
    }

    #[test]
    fn lookahead_exposes_rs_before_update() {
        let spans = iteration_spans(&sim(), 50, Pipeline::LookAhead);
        let rs = spans.iter().find(|s| s.label == "RS").unwrap();
        let up = spans.iter().find(|s| s.label == "UPDATE").unwrap();
        assert!(rs.start < up.start, "Fig 3: RS precedes UPDATE");
        // FACT runs concurrently with UPDATE (overlapping spans).
        let fact = spans.iter().find(|s| s.label == "FACT").unwrap();
        assert!(fact.start >= up.start && fact.start < up.start + up.len);
    }

    #[test]
    fn split_hides_rs_under_updates() {
        let spans = iteration_spans(&sim(), 50, Pipeline::SplitUpdate);
        let up2 = spans.iter().find(|s| s.label == "UPDATE2").unwrap();
        let rs1 = spans.iter().find(|s| s.label == "RS1").unwrap();
        // RS1 lies inside UPDATE2's span early in the run (Fig 6).
        assert!(rs1.start >= up2.start);
        assert!(rs1.start + rs1.len <= up2.start + up2.len + 1e-9);
        let up1 = spans.iter().find(|s| s.label == "UPDATE1").unwrap();
        let rs2 = spans.iter().find(|s| s.label == "RS2'").unwrap();
        assert!(rs2.start >= up1.start - 1e-12);
        assert!(rs2.len <= up1.len + 1e-9, "RS2 hidden by UPDATE1 early on");
    }

    #[test]
    fn render_produces_all_rows() {
        let spans = iteration_spans(&sim(), 50, Pipeline::SplitUpdate);
        let text = render(&spans, 80);
        for row in ["GPU", "CPU", "XFER", "MPI"] {
            assert!(text.contains(row), "missing row {row} in:\n{text}");
        }
        assert!(text.contains("UPDATE2"));
    }
}
