//! GPU (GCD) performance model: DGEMM throughput as a function of problem
//! shape, plus bandwidth-bound kernel costs.
//!
//! Calibration anchors from the paper (§IV.A): at `NB = 512` the large
//! trailing-update DGEMMs sustain 49 TFLOPS per MI250X (two GCDs), i.e.
//! 24.5 TFLOPS per GCD — about 51% of the GCD's 47.9 TFLOPS FP64 matrix
//! peak. Efficiency decays for skinny shapes (small `m`/`n` panels late in
//! the run) with saturating `x / (x + x_half)` factors, the standard
//! strong-scaling surrogate.

use serde::Serialize;

/// DGEMM throughput model for one GCD.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct DgemmModel {
    /// FP64 matrix-op peak of one GCD (FLOP/s).
    pub peak: f64,
    /// Peak fraction achieved at `NB = 512` with large `m`, `n`.
    pub eff_max: f64,
    /// Half-saturation constants for each dimension.
    pub m_half: f64,
    /// See `m_half`.
    pub n_half: f64,
    /// See `m_half`.
    pub k_half: f64,
    /// Fixed kernel launch + scheduling overhead per call (seconds).
    pub launch_overhead: f64,
}

impl Default for DgemmModel {
    fn default() -> Self {
        // eff_max chosen so eff(large, large, 512) * peak = 24.5 TF/GCD.
        Self {
            peak: 47.9e12,
            eff_max: 0.625,
            m_half: 700.0,
            n_half: 700.0,
            k_half: 100.0,
            launch_overhead: 8e-6,
        }
    }
}

impl DgemmModel {
    /// Fraction of peak achieved for an `m x n x k` DGEMM.
    pub fn efficiency(&self, m: f64, n: f64, k: f64) -> f64 {
        if m <= 0.0 || n <= 0.0 || k <= 0.0 {
            return 0.0;
        }
        self.eff_max * (m / (m + self.m_half)) * (n / (n + self.n_half)) * (k / (k + self.k_half))
    }

    /// Sustained FLOP/s for an `m x n x k` DGEMM on one GCD.
    pub fn flops_rate(&self, m: f64, n: f64, k: f64) -> f64 {
        self.peak * self.efficiency(m, n, k)
    }

    /// Wall time of `C -= A*B` with `A: m x k`, `B: k x n` on one GCD.
    pub fn time(&self, m: f64, n: f64, k: f64) -> f64 {
        if m <= 0.0 || n <= 0.0 || k <= 0.0 {
            return 0.0;
        }
        let flops = 2.0 * m * n * k;
        self.launch_overhead + flops / self.flops_rate(m, n, k)
    }
}

/// Bandwidth-bound GPU kernel model (row gather/scatter, DTRSM's
/// memory-bound triangular sweep, copies inside HBM).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct HbmModel {
    /// Effective HBM bandwidth of one GCD (bytes/s).
    pub bandwidth: f64,
    /// Kernel launch overhead (seconds).
    pub launch_overhead: f64,
}

impl Default for HbmModel {
    fn default() -> Self {
        // MI250X: 1.6 TB/s per GCD nominal; ~75% effective for strided
        // row gather/scatter.
        Self {
            bandwidth: 1.2e12,
            launch_overhead: 5e-6,
        }
    }
}

impl HbmModel {
    /// Time to stream `bytes` through HBM (one read + one write pass is
    /// the caller's accounting).
    pub fn time(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        self.launch_overhead + bytes / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_to_paper_dgemm_rate() {
        // Paper: 49 TFLOPS per MI250X (2 GCDs) for the large NB=512 DGEMMs
        // of the early trailing updates (per-GCD operands around
        // 64000 x 128000 x 512 at N = 256000 on a 4x2 grid).
        let m = DgemmModel::default();
        let rate_module = 2.0 * m.flops_rate(64000.0, 128000.0, 512.0);
        assert!(
            (rate_module - 49.0e12).abs() < 2.0e12,
            "module rate {:.1} TF",
            rate_module / 1e12
        );
    }

    #[test]
    fn efficiency_decays_for_skinny_updates() {
        let m = DgemmModel::default();
        let big = m.efficiency(30000.0, 16000.0, 512.0);
        let small = m.efficiency(1000.0, 500.0, 512.0);
        assert!(small < 0.5 * big, "skinny {small} vs big {big}");
        // Smaller NB also hurts.
        assert!(m.efficiency(30000.0, 16000.0, 128.0) < big);
    }

    #[test]
    fn time_scales_linearly_in_flops_when_saturated() {
        let m = DgemmModel::default();
        let t1 = m.time(20000.0, 20000.0, 512.0);
        let t2 = m.time(40000.0, 20000.0, 512.0);
        let ratio = t2 / t1;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn degenerate_shapes_cost_nothing() {
        let m = DgemmModel::default();
        assert_eq!(m.time(0.0, 100.0, 512.0), 0.0);
        let h = HbmModel::default();
        assert_eq!(h.time(0.0), 0.0);
    }
}
