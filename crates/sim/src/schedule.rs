//! Per-iteration schedule model: prices one HPL iteration under the
//! baseline look-ahead pipeline (paper Fig 3) or the split-update pipeline
//! (Fig 6), and accumulates the full-run breakdown that Fig 7 plots.
//!
//! The model tracks the *critical-path* rank (the diagonal owner): phase
//! durations come from the calibrated hardware models in [`crate::gpu`],
//! [`crate::cpu`] and [`crate::link`], and the pipeline structure decides
//! which of them overlap.

use serde::Serialize;

use crate::link::CollectiveModel;
use crate::node::{NodeModel, RunParams};

/// One iteration's simulated timing record (the Fig 7 series).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct IterRecord {
    /// Iteration index.
    pub iter: usize,
    /// Iteration wall time on the critical rank (seconds).
    pub time: f64,
    /// Time the GPU was actively computing during the iteration.
    pub gpu_active: f64,
    /// CPU panel-factorization time.
    pub fact: f64,
    /// MPI time (pivot collectives + LBCAST + row-swap communication).
    pub mpi: f64,
    /// Host<->device transfer time.
    pub transfer: f64,
}

/// Aggregate result of a simulated run.
#[derive(Clone, Debug, Serialize)]
pub struct SimResult {
    /// Per-iteration records.
    pub iters: Vec<IterRecord>,
    /// Total run time (seconds).
    pub total_time: f64,
    /// Benchmark score in TFLOPS.
    pub tflops: f64,
    /// Fraction of *iterations* where communication + CPU work is fully
    /// hidden by GPU activity (paper: ~50% of iterations single-node).
    pub hidden_iter_fraction: f64,
    /// Fraction of *execution time* spent in fully-hidden iterations
    /// (paper: ~75% single-node with the split update).
    pub hidden_time_fraction: f64,
}

/// Which pipeline the model prices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Pipeline {
    /// Factor, broadcast, swap, update, fully serialized (ablation).
    NoOverlap,
    /// Look-ahead only (Fig 3): FACT/LBCAST hidden, RS exposed.
    LookAhead,
    /// Look-ahead + split update (Fig 6): everything hidden while the left
    /// section lasts.
    SplitUpdate,
}

/// Phase durations of one iteration, before overlap composition.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct Phases {
    /// Look-ahead column update (DTRSM + DGEMM on `NB` local columns).
    pub up_la: f64,
    /// Trailing update on the left section (excluding look-ahead columns).
    pub up_left: f64,
    /// Trailing update on the right section.
    pub up_right: f64,
    /// Row-swap gather/scatter GPU kernels (all sections).
    pub rs_kernels: f64,
    /// Row-swap communication, left section (+ look-ahead).
    pub rs1_comm: f64,
    /// Row-swap communication, right section.
    pub rs2_comm: f64,
    /// CPU factorization (local compute).
    pub fact_cpu: f64,
    /// Pivot-search collectives inside FACT.
    pub fact_comm: f64,
    /// Panel D2H + H2D transfers.
    pub transfer: f64,
    /// Panel broadcast.
    pub lbcast: f64,
}

/// The simulator.
pub struct Simulator {
    /// Hardware model.
    pub node: NodeModel,
    /// Run parameters.
    pub params: RunParams,
}

impl Simulator {
    /// Creates a simulator for `params` on `node`.
    pub fn new(node: NodeModel, params: RunParams) -> Self {
        Self { node, params }
    }

    /// Link used by process-column collectives (pivot search, row swap).
    fn col_coll(&self) -> CollectiveModel {
        let spans_nodes = self.params.p > self.params.local_p;
        let mut link = if spans_nodes {
            self.node.nic
        } else {
            self.node.fabric
        };
        if spans_nodes {
            // Latency grows mildly with machine size (Slingshot dragonfly
            // adds at most a couple of switch hops).
            link.latency *= 1.0 + 0.05 * (self.params.nodes as f64).log2().max(0.0);
        }
        CollectiveModel { link }
    }

    /// Link used by process-row collectives (LBCAST).
    fn row_coll(&self) -> CollectiveModel {
        let spans_nodes = self.params.q > self.params.local_q;
        let mut link = if spans_nodes {
            self.node.nic
        } else {
            self.node.fabric
        };
        if spans_nodes {
            link.latency *= 1.0 + 0.05 * (self.params.nodes as f64).log2().max(0.0);
        }
        CollectiveModel { link }
    }

    /// Local trailing geometry at iteration `it`: `(panel_rows_local,
    /// below_rows_local, trailing_cols_local)`.
    fn geometry(&self, it: usize) -> (f64, f64, f64) {
        let n = self.params.n as f64;
        let nb = self.params.nb as f64;
        let k0 = (it * self.params.nb) as f64;
        let mp = ((n - k0) / self.params.p as f64).max(0.0);
        let m = ((n - k0 - nb) / self.params.p as f64).max(0.0);
        let w = ((n - k0 - nb) / self.params.q as f64).max(0.0);
        (mp, m, w)
    }

    /// Right-section width (local columns), fixed for the whole run.
    fn right_width(&self) -> f64 {
        let w0 = self.params.n as f64 / self.params.q as f64;
        (w0 * self.params.split_frac).max(0.0)
    }

    /// DTRSM + DGEMM time to update `w` local columns with `m` local rows.
    /// The triangular solve runs at roughly half DGEMM efficiency.
    fn up_time(&self, m: f64, w: f64) -> f64 {
        if w <= 0.0 || m <= 0.0 {
            return 0.0;
        }
        let nb = self.params.nb as f64;
        2.0 * self.node.dgemm.time(nb, w, nb) + self.node.dgemm.time(m, w, nb)
    }

    /// Row-swap communication time over `w` local columns.
    fn rs_comm(&self, w: f64) -> f64 {
        if w <= 0.0 {
            return 0.0;
        }
        let p = self.params.p;
        let nb = self.params.nb as f64;
        let coll = self.col_coll();
        let bytes = nb * w * 8.0;
        coll.scatterv(p, bytes / p as f64) + coll.allgatherv(p, bytes)
    }

    /// Raw phase durations at iteration `it` for the given pipeline's
    /// section widths.
    pub fn phases(&self, it: usize, pipeline: Pipeline) -> Phases {
        let nb = self.params.nb as f64;
        let (mp, m, w) = self.geometry(it);
        let w2 = match pipeline {
            Pipeline::SplitUpdate => self.right_width().min(w),
            _ => 0.0,
        };
        let w_left_total = w - w2; // includes the look-ahead columns
        let la = if self.params.lookahead {
            nb.min(w_left_total.max(w))
        } else {
            0.0
        };
        let up_la = self.up_time(m, la);
        let (up_left, up_right) = match pipeline {
            Pipeline::SplitUpdate => (
                self.up_time(m, (w_left_total - la).max(0.0)),
                self.up_time(m, w2),
            ),
            _ => (self.up_time(m, (w - la).max(0.0)), 0.0),
        };
        // FACT with time-shared threads.
        let t = self.params.fact_threads(&self.node);
        let fact_cpu = self.node.fact.time(t, mp, nb);
        let fact_comm = if self.params.p > 1 {
            // One combined maxloc+row collective per column.
            nb * self.col_coll().allreduce(self.params.p, 2.0 * nb * 8.0)
        } else {
            0.0
        };
        // Transfers: panel down + factored panel up.
        let panel_bytes = mp * nb * 8.0;
        let transfer = 2.0 * self.node.host_link.time(panel_bytes);
        // LBCAST: modified one-ring of L2 + L1 + pivots, pipelined across
        // iterations so only the root's sends sit on the critical path.
        let lb_bytes = (mp * nb + nb * nb) * 8.0;
        let lbcast = self
            .row_coll()
            .bcast_ring_pipelined(self.params.q, lb_bytes);
        // Row-swap kernels: gather + scatter over all sections, plus the U
        // pack/unpack. Row access is strided by the leading dimension, so
        // each 8-byte element costs a 64-byte cache line on one side of
        // every pass (6 passes: gather x2 sections, scatter x2, U store,
        // pivot-row writes).
        let rs_kernels = self.node.hbm.time(6.0 * nb * w * (64.0 + 8.0) / 2.0);
        let (rs1_comm, rs2_comm) = match pipeline {
            Pipeline::SplitUpdate => (self.rs_comm(w_left_total), self.rs_comm(w2)),
            _ => (self.rs_comm(w), 0.0),
        };
        Phases {
            up_la,
            up_left,
            up_right,
            rs_kernels,
            rs1_comm,
            rs2_comm,
            fact_cpu,
            fact_comm,
            transfer,
            lbcast,
        }
    }

    /// Composes one iteration's phases into wall time under the pipeline.
    pub fn iter_record(&self, it: usize, pipeline: Pipeline) -> IterRecord {
        let nb = self.params.nb as f64;
        let k0 = (it * self.params.nb) as f64;
        let n = self.params.n as f64;
        // Does the split still have a left section at this iteration?
        let split_active = matches!(pipeline, Pipeline::SplitUpdate)
            && (n - k0 - nb) / self.params.q as f64 > self.right_width();
        let ph = if split_active {
            self.phases(it, Pipeline::SplitUpdate)
        } else {
            self.phases(it, Pipeline::LookAhead)
        };
        let chain_cpu = ph.transfer + ph.fact_cpu + ph.fact_comm + ph.lbcast;
        let gpu_active = ph.up_la + ph.up_left + ph.up_right + ph.rs_kernels;
        let time = match (pipeline, split_active) {
            (Pipeline::NoOverlap, _) => {
                chain_cpu + ph.rs1_comm + ph.rs_kernels + ph.up_la + ph.up_left
            }
            (Pipeline::LookAhead, _) | (Pipeline::SplitUpdate, false) => {
                // Fig 3: RS exposed, FACT/LBCAST hidden by the trailing
                // update when it is long enough.
                ph.rs1_comm + ph.rs_kernels + ph.up_la + (ph.up_left + ph.up_right).max(chain_cpu)
            }
            (Pipeline::SplitUpdate, true) => {
                // Fig 6: RS1 hidden under UPDATE2 together with the CPU
                // chain; RS2 (next iteration's prefetch) hidden under
                // UPDATE1.
                ph.rs_kernels
                    + ph.up_la
                    + ph.up_right.max(chain_cpu + ph.rs1_comm)
                    + ph.up_left.max(ph.rs2_comm)
            }
        };
        IterRecord {
            iter: it,
            time,
            gpu_active,
            fact: ph.fact_cpu,
            mpi: ph.fact_comm + ph.lbcast + ph.rs1_comm + ph.rs2_comm,
            transfer: ph.transfer,
        }
    }

    /// Simulates the full run.
    pub fn run(&self, pipeline: Pipeline) -> SimResult {
        let iters: Vec<IterRecord> = (0..self.params.iterations())
            .map(|it| self.iter_record(it, pipeline))
            .collect();
        let mut total: f64 = iters.iter().map(|r| r.time).sum();
        // Backsolve epilogue: N^2 flops at memory-bound rates, plus one
        // collective pair per block row — small but not free.
        let n = self.params.n as f64;
        let solve = 2.0 * n * n * 8.0 / self.node.hbm.bandwidth / self.params.q as f64
            + self.params.iterations() as f64
                * self
                    .col_coll()
                    .allreduce(self.params.p, self.params.nb as f64 * 8.0);
        total += solve;
        let hidden: Vec<bool> = iters
            .iter()
            .map(|r| r.time <= r.gpu_active * 1.02)
            .collect();
        let hidden_iters = hidden.iter().filter(|&&h| h).count();
        let hidden_time: f64 = iters
            .iter()
            .zip(&hidden)
            .filter(|(_, &h)| h)
            .map(|(r, _)| r.time)
            .sum();
        SimResult {
            tflops: self.params.flops() / total / 1e12,
            hidden_iter_fraction: hidden_iters as f64 / iters.len().max(1) as f64,
            hidden_time_fraction: hidden_time / total,
            iters,
            total_time: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_sim() -> Simulator {
        Simulator::new(NodeModel::frontier(), RunParams::paper_single_node())
    }

    #[test]
    fn single_node_score_matches_paper_band() {
        // Paper §IV.A: 153 TFLOPS average on one Crusher node, i.e. 78% of
        // the 196 TF NB=512 DGEMM limit.
        let r = paper_sim().run(Pipeline::SplitUpdate);
        let per_node = r.tflops;
        assert!(
            (145.0..162.0).contains(&per_node),
            "single node score {per_node:.1} TF outside paper band"
        );
    }

    #[test]
    fn two_regimes_with_transition_near_half() {
        // Paper Fig 7: iteration time == GPU time early; transition around
        // iteration 250 of 500 (the 50-50 split point).
        let r = paper_sim().run(Pipeline::SplitUpdate);
        let first_exposed = r
            .iters
            .iter()
            .position(|x| x.time > x.gpu_active * 1.02)
            .expect("tail regime exists");
        assert!(
            (200..300).contains(&first_exposed),
            "transition at iteration {first_exposed}"
        );
        // Early iterations fully hidden.
        assert!(r.iters[10].time <= r.iters[10].gpu_active * 1.02);
        // Tail iterations dominated by fact+mpi+transfer, not GPU.
        let tail = &r.iters[r.iters.len() - 10];
        assert!(tail.gpu_active < tail.time);
    }

    #[test]
    fn split_update_hides_more_than_lookahead_alone() {
        let s = paper_sim();
        let with = s.run(Pipeline::SplitUpdate);
        let without = s.run(Pipeline::LookAhead);
        let serial = s.run(Pipeline::NoOverlap);
        assert!(
            with.tflops > without.tflops,
            "{} vs {}",
            with.tflops,
            without.tflops
        );
        assert!(without.tflops > serial.tflops);
        // Paper: all MPI hidden for ~75% of execution time with the split.
        assert!(
            (0.55..0.90).contains(&with.hidden_time_fraction),
            "hidden time fraction {}",
            with.hidden_time_fraction
        );
        assert!(with.hidden_iter_fraction > 0.40);
    }

    #[test]
    fn first_regime_throughput_near_90pct_of_dgemm_limit() {
        // Paper: running throughput ~175 TF = 90% of the 196 TF limit in
        // the compute-bound regime.
        let s = paper_sim();
        let r = s.run(Pipeline::SplitUpdate);
        // Flops of iteration `it`: 2*Nt^2*NB across the whole machine.
        let it = 50usize;
        let n = s.params.n as f64;
        let nb = s.params.nb as f64;
        let nt = n - (it as f64) * nb - nb;
        let fl = 2.0 * nt * nt * nb + 2.0 * nt * nb * nb;
        let rate = fl / r.iters[it].time / 1e12;
        assert!((160.0..196.0).contains(&rate), "regime-1 rate {rate:.1} TF");
    }

    #[test]
    fn gpu_active_decreases_monotonically_overall() {
        let r = paper_sim().run(Pipeline::SplitUpdate);
        // Compare decade averages to smooth the split-phase transition.
        let avg = |lo: usize, hi: usize| -> f64 {
            r.iters[lo..hi].iter().map(|x| x.gpu_active).sum::<f64>() / (hi - lo) as f64
        };
        assert!(avg(0, 50) > avg(200, 250));
        assert!(avg(200, 250) > avg(420, 470));
    }
}
