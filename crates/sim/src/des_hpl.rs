//! The HPL task graph on the discrete-event engine: every iteration's
//! phases become tasks on four exclusive resources (GPU stream, CPU, copy
//! engine, NIC), with the *dependency edges* of the look-ahead (Fig 3) or
//! split-update (Fig 6) pipeline — so the overlap behavior the paper
//! reports is an emergent property of the graph, cross-validated against
//! the closed-form model in [`crate::schedule`].
//!
//! Unlike the closed form, the DES also models contention: LBCAST and
//! row-swap traffic share the NIC resource (the paper's stated concern
//! with Tan et al.'s extra-thread pipelining is exactly such congestion).

use serde::Serialize;

use crate::des::{Des, ResourceId, TaskId, Trace};
use crate::schedule::{Pipeline, Simulator};

/// The four resources of the critical rank.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Machine {
    /// GPU compute stream.
    pub gpu: ResourceId,
    /// Host cores doing FACT.
    pub cpu: ResourceId,
    /// Host<->device copy engine.
    pub xfer: ResourceId,
    /// Network interface (LBCAST and row-swap traffic share it).
    pub net: ResourceId,
}

/// Result of a DES run of the full benchmark.
#[derive(Clone, Debug, Serialize)]
pub struct DesResult {
    /// The executed trace.
    pub trace: Trace,
    /// Benchmark score implied by the makespan (TFLOPS).
    pub tflops: f64,
    /// Completion time of each iteration's last trailing-update task.
    pub iter_done: Vec<f64>,
}

/// Carried dependencies between iterations.
struct Carry {
    /// Panel availability on all ranks (LBCAST completion).
    lbcast: Option<TaskId>,
    /// Prefetched right-section row-swap communication.
    rs2_comm: Option<TaskId>,
    /// Last trailing-update task of the previous iteration.
    last_update: Option<TaskId>,
}

/// Whether the split pipeline still has a left section at iteration `it`.
fn split_active(sim: &Simulator, it: usize) -> bool {
    let n = sim.params.n as f64;
    let nb = sim.params.nb as f64;
    let k0 = (it * sim.params.nb) as f64;
    (n - k0 - nb) / sim.params.q as f64 > n / sim.params.q as f64 * sim.params.split_frac
}

/// Builds and runs the full-benchmark task graph under `pipeline`
/// (`LookAhead` or `SplitUpdate`; `NoOverlap` is serialized by chaining
/// every task).
pub fn simulate_des(sim: &Simulator, pipeline: Pipeline) -> DesResult {
    let mut des = Des::new();
    let m = Machine {
        gpu: des.resource("GPU"),
        cpu: des.resource("CPU"),
        xfer: des.resource("XFER"),
        net: des.resource("NET"),
    };
    let iters = sim.params.iterations();

    // Prologue: factor + broadcast panel 0.
    let ph0 = sim.phases(0, pipeline);
    let d2h = des.task(m.xfer, "d2h:0", ph0.transfer / 2.0, &[]);
    let fact = des.task(m.cpu, "fact:0", ph0.fact_cpu + ph0.fact_comm, &[d2h]);
    let h2d = des.task(m.xfer, "h2d:0", ph0.transfer / 2.0, &[fact]);
    let lb0 = des.task(m.net, "lbcast:0", ph0.lbcast, &[h2d]);
    let mut carry = Carry {
        lbcast: Some(lb0),
        rs2_comm: None,
        last_update: None,
    };
    if matches!(pipeline, Pipeline::SplitUpdate) && split_active(sim, 0) {
        let ph = sim.phases(0, Pipeline::SplitUpdate);
        let g = des.task(m.gpu, "rs2-gather:0", ph.rs_kernels / 4.0, &[lb0]);
        carry.rs2_comm = Some(des.task(m.net, "rs2-comm:0", ph.rs2_comm, &[g]));
    }

    let mut iter_last = Vec::with_capacity(iters);
    for it in 0..iters {
        let active = matches!(pipeline, Pipeline::SplitUpdate) && split_active(sim, it);
        let last = if active {
            split_iteration(&mut des, &m, sim, it, &mut carry)
        } else {
            lookahead_iteration(&mut des, &m, sim, it, &mut carry, pipeline)
        };
        carry.last_update = Some(last);
        iter_last.push(last);
    }

    let trace = des.run();
    let iter_done: Vec<f64> = iter_last.iter().map(|&t| trace.span(t).end).collect();
    let makespan = trace.makespan;
    DesResult {
        tflops: sim.params.flops() / makespan / 1e12,
        trace,
        iter_done,
    }
}

/// Chain D2H -> FACT -> H2D -> LBCAST for panel `it + 1`, gated on `dep`
/// (the look-ahead update of those columns).
fn next_panel_chain(
    des: &mut Des,
    m: &Machine,
    sim: &Simulator,
    it: usize,
    dep: TaskId,
    pipeline: Pipeline,
) -> Option<TaskId> {
    if it + 1 >= sim.params.iterations() {
        return None;
    }
    let phn = sim.phases(it + 1, pipeline);
    let d2h = des.task(
        m.xfer,
        format!("d2h:{}", it + 1),
        phn.transfer / 2.0,
        &[dep],
    );
    let fact = des.task(
        m.cpu,
        format!("fact:{}", it + 1),
        phn.fact_cpu + phn.fact_comm,
        &[d2h],
    );
    let h2d = des.task(
        m.xfer,
        format!("h2d:{}", it + 1),
        phn.transfer / 2.0,
        &[fact],
    );
    Some(des.task(m.net, format!("lbcast:{}", it + 1), phn.lbcast, &[h2d]))
}

/// Fig 3 iteration: RS exposed, host chain under UPDATE. With
/// `Pipeline::NoOverlap` the update additionally waits for the next
/// panel's broadcast, serializing everything.
fn lookahead_iteration(
    des: &mut Des,
    m: &Machine,
    sim: &Simulator,
    it: usize,
    carry: &mut Carry,
    pipeline: Pipeline,
) -> TaskId {
    let ph = sim.phases(it, Pipeline::LookAhead);
    let lb = carry.lbcast.take().expect("panel broadcast exists");
    let mut deps = vec![lb];
    deps.extend(carry.last_update);
    // A leftover RS2 prefetch (transition out of the split) lands first.
    deps.extend(carry.rs2_comm.take());
    let gather = des.task(m.gpu, format!("rs-gather:{it}"), ph.rs_kernels / 2.0, &deps);
    let comm = des.task(m.net, format!("rs-comm:{it}"), ph.rs1_comm, &[gather]);
    let scatter = des.task(
        m.gpu,
        format!("rs-scatter:{it}"),
        ph.rs_kernels / 2.0,
        &[comm],
    );
    let up_la = des.task(m.gpu, format!("up-la:{it}"), ph.up_la, &[scatter]);
    if !matches!(pipeline, Pipeline::NoOverlap) {
        // Look-ahead: the next panel's host chain starts as soon as its
        // columns are updated, overlapping the trailing update below.
        carry.lbcast = next_panel_chain(des, m, sim, it, up_la, pipeline);
    }
    let update = des.task(
        m.gpu,
        format!("update:{it}"),
        ph.up_left + ph.up_right,
        &[scatter, up_la],
    );
    if matches!(pipeline, Pipeline::NoOverlap) {
        // Serialized ablation: factor the next panel only after this
        // iteration's full update is done.
        carry.lbcast = next_panel_chain(des, m, sim, it, update, pipeline);
    }
    update
}

/// Fig 6 iteration: RS1 and the host chain under UPDATE2; the next RS2
/// prefetch under UPDATE1.
fn split_iteration(
    des: &mut Des,
    m: &Machine,
    sim: &Simulator,
    it: usize,
    carry: &mut Carry,
) -> TaskId {
    let pipeline = Pipeline::SplitUpdate;
    let ph = sim.phases(it, pipeline);
    let k = ph.rs_kernels / 4.0; // per-section gather/scatter kernel cost
    let lb = carry.lbcast.take().expect("panel broadcast exists");
    let mut deps = vec![lb];
    deps.extend(carry.last_update);
    // 1. Scatter the prefetched right-section rows.
    let rs2 = carry
        .rs2_comm
        .take()
        .expect("split iteration has a prefetched RS2");
    let mut scatter2_deps = vec![rs2];
    scatter2_deps.extend(carry.last_update);
    let scatter2 = des.task(m.gpu, format!("rs2-scatter:{it}"), k, &scatter2_deps);
    // 2. Look-ahead section swap + update (the look-ahead is one block
    // column, a small fraction of the left section).
    let la_gather = des.task(m.gpu, format!("rsla-gather:{it}"), k * 0.1, &deps);
    let la_comm = des.task(
        m.net,
        format!("rsla-comm:{it}"),
        ph.rs1_comm * 0.1,
        &[la_gather],
    );
    let la_scatter = des.task(m.gpu, format!("rsla-scatter:{it}"), k * 0.1, &[la_comm]);
    let up_la = des.task(m.gpu, format!("up-la:{it}"), ph.up_la, &[la_scatter]);
    // 3. Next panel's host chain (hidden under UPDATE2 on the GPU).
    let lbn = next_panel_chain(des, m, sim, it, up_la, pipeline);
    carry.lbcast = lbn;
    // 4. RS1: gathered at iteration start, communicated under UPDATE2.
    let rs1_gather = des.task(m.gpu, format!("rs1-gather:{it}"), k, &deps);
    let rs1_comm = des.task(m.net, format!("rs1-comm:{it}"), ph.rs1_comm, &[rs1_gather]);
    let rs1_scatter = des.task(m.gpu, format!("rs1-scatter:{it}"), k, &[rs1_comm]);
    // 5. UPDATE2 (right section).
    let up2 = des.task(m.gpu, format!("up2:{it}"), ph.up_right, &[scatter2, up_la]);
    // 6. Prefetch RS2 for the next iteration: needs the next panel's
    // pivots, i.e. its broadcast. (The prefetch also covers the transition
    // iteration, where the right section is the whole trailing matrix.)
    if let Some(lbn) = lbn {
        let phn = sim.phases(it + 1, pipeline);
        let g = des.task(m.gpu, format!("rs2-gather:{}", it + 1), k, &[up2, lbn]);
        carry.rs2_comm = Some(des.task(m.net, format!("rs2-comm:{}", it + 1), phn.rs2_comm, &[g]));
    }
    // 7. UPDATE1 (left section), hiding the RS2 prefetch communication.
    des.task(m.gpu, format!("up1:{it}"), ph.up_left, &[rs1_scatter, up2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeModel, RunParams};

    fn sim() -> Simulator {
        Simulator::new(NodeModel::frontier(), RunParams::paper_single_node())
    }

    #[test]
    fn des_score_close_to_analytic_model() {
        let s = sim();
        let des = simulate_des(&s, Pipeline::SplitUpdate);
        let analytic = s.run(Pipeline::SplitUpdate);
        let ratio = des.tflops / analytic.tflops;
        assert!(
            (0.85..1.15).contains(&ratio),
            "DES {:.1} TF vs analytic {:.1} TF",
            des.tflops,
            analytic.tflops
        );
        // And both in the paper's band.
        assert!((140.0..170.0).contains(&des.tflops), "{:.1}", des.tflops);
    }

    #[test]
    fn des_pipeline_ordering_matches_paper() {
        let s = sim();
        let split = simulate_des(&s, Pipeline::SplitUpdate);
        let la = simulate_des(&s, Pipeline::LookAhead);
        let serial = simulate_des(&s, Pipeline::NoOverlap);
        assert!(
            split.tflops > la.tflops && la.tflops > serial.tflops,
            "split {:.1} > lookahead {:.1} > serial {:.1}",
            split.tflops,
            la.tflops,
            serial.tflops
        );
    }

    #[test]
    fn gpu_utilization_high_in_first_regime() {
        // While the split is active the GPU should be nearly saturated:
        // compare GPU busy time against the first-regime span.
        let s = sim();
        let r = simulate_des(&s, Pipeline::SplitUpdate);
        let t_regime1 = r.iter_done[235];
        let gpu_busy: f64 = r
            .trace
            .spans
            .iter()
            .filter(|sp| sp.resource.0 == 0 && sp.end <= t_regime1)
            .map(|sp| sp.end - sp.start)
            .sum();
        let util = gpu_busy / t_regime1;
        assert!(util > 0.93, "regime-1 GPU utilization {util:.3}");
    }

    #[test]
    fn fact_overlaps_update_in_the_trace() {
        // The emergent Fig 3/6 property: fact(i+1) runs while update(i)
        // runs on the GPU.
        let s = sim();
        let r = simulate_des(&s, Pipeline::SplitUpdate);
        let fact = r
            .trace
            .spans
            .iter()
            .find(|sp| sp.label == "fact:51")
            .unwrap();
        let up2 = r
            .trace
            .spans
            .iter()
            .find(|sp| sp.label == "up2:50")
            .unwrap();
        let overlap = fact.end.min(up2.end) - fact.start.max(up2.start);
        assert!(
            overlap > 0.5 * (fact.end - fact.start),
            "fact:51 [{:.4},{:.4}] vs up2:50 [{:.4},{:.4}]",
            fact.start,
            fact.end,
            up2.start,
            up2.end
        );
    }

    #[test]
    fn iteration_completions_are_monotone() {
        let s = sim();
        let r = simulate_des(&s, Pipeline::SplitUpdate);
        assert_eq!(r.iter_done.len(), 500);
        assert!(r.iter_done.windows(2).all(|w| w[0] < w[1]));
    }
}
