//! Cross-checks the analytic pipeline model against the discrete-event
//! simulator for each overlap strategy on the paper's single-node config.
use hpl_sim::*;
fn main() {
    let sim = Simulator::new(NodeModel::frontier(), RunParams::paper_single_node());
    for pl in [
        Pipeline::NoOverlap,
        Pipeline::LookAhead,
        Pipeline::SplitUpdate,
    ] {
        let a = sim.run(pl);
        let d = simulate_des(&sim, pl);
        println!(
            "{pl:?}: analytic {:.1} TF, DES {:.1} TF ({} tasks)",
            a.tflops,
            d.tflops,
            d.trace.spans.len()
        );
    }
    let d = simulate_des(&sim, Pipeline::SplitUpdate);
    println!("GPU util: {:.3}", d.trace.utilization(ResourceId(0)));
    println!("NET util: {:.3}", d.trace.utilization(ResourceId(3)));
}
