//! Calibration scratchpad: prints the key modeled quantities.
use hpl_sim::*;

fn main() {
    let node = NodeModel::frontier();
    let m = DgemmModel::default();
    println!(
        "GCD dgemm rate (30000x16000x512): {:.2} TF; module: {:.2} TF",
        m.flops_rate(30000.0, 16000.0, 512.0) / 1e12,
        2.0 * m.flops_rate(30000.0, 16000.0, 512.0) / 1e12
    );
    let f = FactModel::default();
    for t in [1usize, 2, 4, 8, 16, 32, 64] {
        let g: Vec<String> = [512.0f64, 2048.0, 8192.0, 32768.0, 131072.0]
            .iter()
            .map(|&mm| format!("{:7.1}", f.gflops(t, mm)))
            .collect();
        println!("T={t:2}: {}", g.join(" "));
    }
    let params = RunParams::paper_single_node();
    println!("fact_threads = {}", params.fact_threads(&node));
    let sim = Simulator::new(node, params);
    for pl in [
        Pipeline::NoOverlap,
        Pipeline::LookAhead,
        Pipeline::SplitUpdate,
    ] {
        let r = sim.run(pl);
        println!(
            "{:?}: {:.1} TF, hidden iters {:.2}, hidden time {:.2}, total {:.1}s",
            pl, r.tflops, r.hidden_iter_fraction, r.hidden_time_fraction, r.total_time
        );
    }
    let r = sim.run(Pipeline::SplitUpdate);
    for it in [0usize, 50, 150, 249, 250, 260, 300, 400, 480, 499] {
        let x = &r.iters[it];
        println!(
            "it {:3}: time {:.4} gpu {:.4} fact {:.4} mpi {:.5} xfer {:.5}",
            x.iter,
            x.time * 1e3,
            x.gpu_active * 1e3,
            x.fact * 1e3,
            x.mpi * 1e3,
            x.transfer * 1e3
        );
    }
    let first_exposed = r.iters.iter().position(|x| x.time > x.gpu_active * 1.02);
    println!("first exposed iter: {:?}", first_exposed);
    println!("-- weak scaling");
    for p in weak_scaling(&node, &[1, 2, 4, 8, 16, 32, 64, 128]) {
        println!(
            "nodes {:3}: N={} {}x{} {:.0} TF eff {:.3}",
            p.nodes, p.n, p.p, p.q, p.tflops, p.efficiency
        );
    }
}
