//! # hpl-mxp
//!
//! Mixed-precision LU with iterative refinement — the **HPL-MxP** scheme
//! the paper's introduction describes as the benchmark "which stresses the
//! system's computational throughput of mixed- and lower-precision math
//! operations" (the same MI250X matrix engines rocHPL's FP64 path uses
//! deliver 4x the FP32 rate, which is what made Frontier's 7+ ExaFLOPS
//! HPL-MxP runs possible).
//!
//! Scope note (see DESIGN.md): the paper's *contribution* is the FP64 HPL
//! pipeline reproduced in `rhpl-core`; this crate implements the sibling
//! benchmark on top of it:
//!
//! * [`dist`] — the distributed benchmark: the *full* `rhpl-core`
//!   pipeline (look-ahead, split update, LBCAST, threaded FACT) runs in
//!   `f32` via [`rhpl_core::factorize`], then replicated `f64` refinement
//!   sweeps replay the pivot log against the resident factors until the
//!   solution passes HPL's residual gate at double accuracy.
//! * [`low`] — single-process `f32` blocked LU (SGETRF) and triangular
//!   solves: the O(n^3) work at low precision, kept as the shared-memory
//!   oracle for the distributed path.
//! * [`ir`] — classic iterative refinement: `x += M^{-1}(b - A x)` with
//!   `f64` residuals, reaching double accuracy in a handful of O(n^2)
//!   sweeps.
//! * [`gmres`] — LU-preconditioned restarted GMRES in `f64`, the
//!   refinement method of the HPL-MxP reference implementation, which
//!   also handles systems where classic refinement stalls.

// Lint policy: indexed loops are used deliberately where they mirror the
// reference BLAS/HPL loop structure, and several kernels take the full
// argument list their BLAS counterparts do.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::too_many_arguments)]

pub mod dist;
pub mod gmres;
pub mod ir;
pub mod low;

pub use dist::{replay_solve, solve_mxp, solve_mxp_with, MxpOutput, MxpParams};
pub use gmres::{solve_gmres, GmresParams};
pub use ir::{scaled_residual, solve_ir, DenseOp, LowLu, MxpReport};
pub use low::{sgetrf, slu_solve, SMatrix};

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline MxP property: an HPL-grade random system solved with
    /// O(n^3) f32 flops + O(n^2) f64 refinement passes HPL's own residual
    /// test.
    #[test]
    fn hpl_random_system_via_mixed_precision() {
        let n = 256;
        // The same generator family rhpl-core uses.
        let mut s = 99u64 | 1;
        let mut vals = Vec::with_capacity(n * (n + 1));
        for _ in 0..n * (n + 1) {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            vals.push(((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5);
        }
        let op = DenseOp::new(n, |i, j| vals[j * n + i]);
        let b: Vec<f64> = (0..n).map(|i| vals[n * n + i]).collect();
        let lu = LowLu::factor(&op, 32).expect("nonsingular");
        let rep = solve_ir(&op, &lu, &b, 20);
        assert!(
            rep.converged,
            "mixed precision must pass the HPL test: {:?}",
            rep.history
        );
        // And the initial f32-only solve alone must NOT pass at this size
        // (otherwise the refinement demonstrates nothing).
        assert!(
            rep.history[0]
                > rep
                    .history
                    .last()
                    .expect("history is seeded with the initial residual")
                    * 10.0,
            "refinement must improve the residual materially: {:?}",
            rep.history
        );
    }
}
