//! Mixed-precision solvers: LU in `f32`, residuals and corrections in
//! `f64` — classic iterative refinement and the LU-preconditioned
//! GMRES that the HPL-MxP reference implementation uses. The O(n^3) work
//! runs entirely in low precision; the O(n^2) refinement recovers full
//! double-precision accuracy.

use rhpl_core::HplError;

use crate::low::{sgetrf, slu_solve, SMatrix};

/// Dense `f64` operator used for the high-precision residuals. The matrix
/// is supplied as a fill function (as in `rhpl_core::run_hpl_with`) and
/// materialized once.
pub struct DenseOp {
    n: usize,
    a: Vec<f64>, // column-major
}

impl DenseOp {
    /// Materializes an `n x n` operator from `fill(i, j)`.
    pub fn new(n: usize, fill: impl Fn(usize, usize) -> f64) -> Self {
        let mut a = vec![0.0f64; n * n];
        for j in 0..n {
            for i in 0..n {
                a[j * n + i] = fill(i, j);
            }
        }
        Self { n, a }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `y = A x` in `f64`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        y.fill(0.0);
        for j in 0..self.n {
            let xj = x[j];
            if xj != 0.0 {
                let col = &self.a[j * self.n..(j + 1) * self.n];
                for (yi, &aij) in y.iter_mut().zip(col) {
                    *yi += aij * xj;
                }
            }
        }
    }

    /// Infinity norm of the operator.
    pub fn norm_inf(&self) -> f64 {
        let mut sums = vec![0.0f64; self.n];
        for j in 0..self.n {
            for (s, &v) in sums.iter_mut().zip(&self.a[j * self.n..(j + 1) * self.n]) {
                *s += v.abs();
            }
        }
        sums.into_iter().fold(0.0, f64::max)
    }

    /// Demoted copy for the low-precision factorization.
    pub fn to_f32(&self) -> SMatrix {
        SMatrix::from_f64(self.n, self.n, &self.a)
    }
}

/// The low-precision preconditioner: `M^{-1} ~= A^{-1}` via the `f32` LU.
pub struct LowLu {
    lu: SMatrix,
    piv: Vec<usize>,
}

impl LowLu {
    /// Factors the demoted operator ([`HplError::Singular`] on an
    /// exactly-zero pivot).
    pub fn factor(op: &DenseOp, nb: usize) -> Result<Self, HplError> {
        let mut lu = op.to_f32();
        let mut piv = vec![0usize; op.n()];
        sgetrf(&mut lu, &mut piv, nb)?;
        Ok(Self { lu, piv })
    }

    /// Applies `M^{-1} r` (demote, triangular solves in `f32`, promote).
    pub fn apply(&self, r: &[f64]) -> Vec<f64> {
        slu_solve(&self.lu, &self.piv, r)
    }
}

/// Convergence report of a mixed-precision solve.
#[derive(Clone, Debug)]
pub struct MxpReport {
    /// The solution.
    pub x: Vec<f64>,
    /// Scaled residuals after each refinement step (HPL formula), starting
    /// with the pure-`f32` initial solve.
    pub history: Vec<f64>,
    /// Whether the final residual beat the HPL threshold (16.0).
    pub converged: bool,
}

/// HPL's scaled residual for this operator.
pub fn scaled_residual(op: &DenseOp, b: &[f64], x: &[f64]) -> f64 {
    let n = op.n();
    let mut ax = vec![0.0f64; n];
    op.matvec(x, &mut ax);
    let err = ax
        .iter()
        .zip(b)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let xn = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let bn = b.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    err / (f64::EPSILON * (op.norm_inf() * xn + bn) * n as f64)
}

/// Classic iterative refinement: `x_{k+1} = x_k + M^{-1}(b - A x_k)`.
pub fn solve_ir(op: &DenseOp, lu: &LowLu, b: &[f64], max_iters: usize) -> MxpReport {
    let n = op.n();
    assert_eq!(b.len(), n);
    let mut x = lu.apply(b);
    let mut last = scaled_residual(op, b, &x);
    let mut history = vec![last];
    let mut r = vec![0.0f64; n];
    for _ in 0..max_iters {
        if last < 16.0 {
            break;
        }
        op.matvec(&x, &mut r);
        for (ri, &bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        let d = lu.apply(&r);
        for (xi, di) in x.iter_mut().zip(d) {
            *xi += di;
        }
        last = scaled_residual(op, b, &x);
        history.push(last);
    }
    MxpReport {
        x,
        history,
        converged: last < 16.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_system(n: usize, seed: u64, dominance: f64) -> (DenseOp, Vec<f64>, Vec<f64>) {
        let mut s = seed | 1;
        let mut vals = Vec::with_capacity(n * n);
        for _ in 0..n * n {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            vals.push(((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5);
        }
        let op = DenseOp::new(n, |i, j| {
            let v = vals[j * n + i];
            if i == j {
                v + dominance
            } else {
                v
            }
        });
        let xtrue: Vec<f64> = (0..n).map(|i| ((i * 3 + 1) % 7) as f64 - 3.0).collect();
        let mut b = vec![0.0f64; n];
        op.matvec(&xtrue, &mut b);
        (op, b, xtrue)
    }

    #[test]
    fn pure_f32_solve_is_not_double_accurate() {
        // At n = 300 the f32 factorization alone leaves a residual well
        // above what a double-precision factorization produces — the gap
        // iterative refinement exists to close.
        let (op, b, xtrue) = test_system(300, 5, 4.0);
        let lu = LowLu::factor(&op, 32).unwrap();
        let x0 = lu.apply(&b);
        let err0 = x0
            .iter()
            .zip(&xtrue)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(err0 > 1e-7, "f32 solve unexpectedly accurate: {err0:.3e}");
    }

    #[test]
    fn refinement_reaches_double_precision() {
        let (op, b, xtrue) = test_system(300, 5, 4.0);
        let lu = LowLu::factor(&op, 32).unwrap();
        let rep = solve_ir(&op, &lu, &b, 10);
        assert!(rep.converged, "history: {:?}", rep.history);
        // A few refinement steps suffice on a well-conditioned system.
        assert!(rep.history.len() <= 5, "history: {:?}", rep.history);
        let err = rep
            .x
            .iter()
            .zip(&xtrue)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-9, "refined error {err:.3e}");
        // Residual history is (essentially) monotically improving.
        assert!(rep.history.last().unwrap() < &rep.history[0]);
    }

    #[test]
    fn scaled_residual_matches_hpl_semantics() {
        let (op, b, xtrue) = test_system(50, 9, 3.0);
        // Exact solution -> residual far below threshold; garbage -> above.
        assert!(scaled_residual(&op, &b, &xtrue) < 1.0);
        let garbage = vec![1.0; 50];
        assert!(scaled_residual(&op, &b, &garbage) > 16.0);
    }
}
