//! Low-precision (`f32`) dense kernels: the compute-heavy factorization
//! path of the HPL-MxP scheme. Same GotoBLAS-style structure as the `f64`
//! kernels in `hpl-blas`, with a wider microkernel (twice as many `f32`
//! lanes fit a vector register).

use rhpl_core::HplError;

/// Column-major `f32` matrix owned storage (lda == rows).
#[derive(Clone, Debug)]
pub struct SMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl SMatrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Demotes a column-major `f64` buffer.
    pub fn from_f64(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols);
        Self {
            rows,
            cols,
            data: data.iter().map(|&v| v as f32).collect(),
        }
    }

    /// Builds element-wise from `f(i, j)` (demoting).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j) as f32);
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[j * self.rows + i]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[j * self.rows + i] = v;
    }

    /// Column slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f32] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutable column slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f32] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }
}

/// Microkernel tile: 16 x 4 `f32` accumulators.
const MR: usize = 16;
const NR: usize = 4;
const KC: usize = 256;
const MC: usize = 256;

/// Blocked `C -= A * B` on `f32` (`A: m x k`, `B: k x n`, all inside one
/// [`SMatrix`] via offsets). The only GEMM shape the factorization needs.
#[allow(clippy::too_many_arguments)]
fn sgemm_sub(
    a: &SMatrix,
    (ar, ac): (usize, usize),
    b: &SMatrix,
    (br, bc): (usize, usize),
    c: &mut SMatrix,
    (cr, cc): (usize, usize),
    m: usize,
    n: usize,
    k: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let mut apack = vec![0.0f32; MC.min(m.next_multiple_of(MR)) * KC.min(k)];
    let mut bpack = vec![0.0f32; KC.min(k) * n.next_multiple_of(NR)];
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        // Pack B rows pc..pc+kc, all n columns, into NR strips.
        for (js, j0) in (0..n).step_by(NR).enumerate() {
            let nr = NR.min(n - j0);
            for p in 0..kc {
                for j in 0..NR {
                    bpack[js * kc * NR + p * NR + j] = if j < nr {
                        b.get(br + pc + p, bc + j0 + j)
                    } else {
                        0.0
                    };
                }
            }
        }
        for ic in (0..m).step_by(MC) {
            let mc = MC.min(m - ic);
            for (is, i0) in (0..mc).step_by(MR).enumerate() {
                let mr = MR.min(mc - i0);
                for p in 0..kc {
                    for i in 0..MR {
                        apack[is * kc * MR + p * MR + i] = if i < mr {
                            a.get(ar + ic + i0 + i, ac + pc + p)
                        } else {
                            0.0
                        };
                    }
                }
            }
            // Macro kernel.
            for (js, j0) in (0..n).step_by(NR).enumerate() {
                let nr = NR.min(n - j0);
                let bs = &bpack[js * kc * NR..(js + 1) * kc * NR];
                for (is, i0) in (0..mc).step_by(MR).enumerate() {
                    let as_ = &apack[is * kc * MR..(is + 1) * kc * MR];
                    let mut acc = [[0.0f32; MR]; NR];
                    for p in 0..kc {
                        let av = &as_[p * MR..p * MR + MR];
                        let bv = &bs[p * NR..p * NR + NR];
                        for j in 0..NR {
                            let bj = bv[j];
                            for i in 0..MR {
                                acc[j][i] += av[i] * bj;
                            }
                        }
                    }
                    let mr = MR.min(mc - i0);
                    for j in 0..nr {
                        let col = c.col_mut(cc + j0 + j);
                        for i in 0..mr {
                            col[cr + ic + i0 + i] -= acc[j][i];
                        }
                    }
                }
            }
        }
    }
}

/// Blocked `f32` LU with partial pivoting (SGETRF). Pivots (0-based, as
/// "swap row k with `piv[k]`") land in `piv`; an exactly-zero pivot
/// surfaces as [`HplError::Singular`] naming the offending column, the
/// same taxonomy the distributed pipeline uses.
pub fn sgetrf(a: &mut SMatrix, piv: &mut [usize], nb: usize) -> Result<(), HplError> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "sgetrf: square matrices only");
    assert!(piv.len() >= n);
    let nb = nb.max(1);
    let mut k0 = 0usize;
    while k0 < n {
        let kb = nb.min(n - k0);
        // Unblocked right-looking factorization of the panel.
        for k in k0..k0 + kb {
            // Pivot search over rows k..n in column k.
            let col = a.col(k);
            let mut best = k;
            let mut bv = col[k].abs();
            for (off, &v) in col[k..].iter().enumerate().skip(1) {
                if v.abs() > bv {
                    bv = v.abs();
                    best = k + off;
                }
            }
            piv[k] = best;
            if a.get(best, k) == 0.0 {
                return Err(HplError::Singular { col: k });
            }
            if best != k {
                for j in 0..n {
                    let cj = a.col_mut(j);
                    cj.swap(k, best);
                }
            }
            let akk = a.get(k, k);
            for i in k + 1..n {
                let v = a.get(i, k) / akk;
                a.set(i, k, v);
            }
            // Rank-1 update within the panel.
            for j in k + 1..k0 + kb {
                let ykj = a.get(k, j);
                if ykj != 0.0 {
                    for i in k + 1..n {
                        let v = a.get(i, j) - a.get(i, k) * ykj;
                        a.set(i, j, v);
                    }
                }
            }
        }
        let rest = n - k0 - kb;
        if rest > 0 {
            // U12 = L11^{-1} A12 (unit lower triangular solve).
            for k in k0..k0 + kb {
                for j in k0 + kb..n {
                    let xkj = a.get(k, j);
                    if xkj != 0.0 {
                        for i in k + 1..k0 + kb {
                            let v = a.get(i, j) - a.get(i, k) * xkj;
                            a.set(i, j, v);
                        }
                    }
                }
            }
            // A22 -= L21 * U12.
            let acopy = a.clone();
            sgemm_sub(
                &acopy,
                (k0 + kb, k0),
                &acopy,
                (k0, k0 + kb),
                a,
                (k0 + kb, k0 + kb),
                rest,
                rest,
                kb,
            );
        }
        k0 += kb;
    }
    Ok(())
}

/// Applies a computed `f32` factorization to solve `LU y = P b`, all in
/// `f32`; `b` is given and returned in `f64` (demoted on entry, promoted on
/// exit) — one preconditioner application of the refinement loop.
pub fn slu_solve(lu: &SMatrix, piv: &[usize], b: &[f64]) -> Vec<f64> {
    let n = lu.rows();
    assert_eq!(b.len(), n);
    let mut y: Vec<f32> = b.iter().map(|&v| v as f32).collect();
    for (k, &p) in piv.iter().enumerate().take(n) {
        if p != k {
            y.swap(k, p);
        }
    }
    // Forward: unit lower.
    for j in 0..n {
        let yj = y[j];
        if yj != 0.0 {
            let col = lu.col(j);
            for i in j + 1..n {
                y[i] -= yj * col[i];
            }
        }
    }
    // Backward: upper.
    for j in (0..n).rev() {
        y[j] /= lu.get(j, j);
        let yj = y[j];
        if yj != 0.0 {
            let col = lu.col(j);
            for (i, yi) in y.iter_mut().enumerate().take(j) {
                *yi -= yj * col[i];
            }
        }
    }
    y.into_iter().map(|v| v as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dd_matrix(n: usize, seed: u64) -> SMatrix {
        let mut s = seed | 1;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut a = SMatrix::from_fn(n, n, |_, _| 0.0);
        for j in 0..n {
            for i in 0..n {
                a.set(i, j, next() as f32);
            }
        }
        for i in 0..n {
            let v = a.get(i, i);
            a.set(i, i, v + n as f32);
        }
        a
    }

    #[test]
    fn sgetrf_solves_to_f32_accuracy() {
        for &(n, nb) in &[(5usize, 2usize), (32, 8), (100, 32), (130, 64)] {
            let a0 = dd_matrix(n, 7);
            let xtrue: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
            let mut b = vec![0.0f64; n];
            for j in 0..n {
                for (i, bi) in b.iter_mut().enumerate() {
                    *bi += a0.get(i, j) as f64 * xtrue[j];
                }
            }
            let mut lu = a0.clone();
            let mut piv = vec![0usize; n];
            sgetrf(&mut lu, &mut piv, nb).expect("nonsingular");
            let x = slu_solve(&lu, &piv, &b);
            for (got, want) in x.iter().zip(&xtrue) {
                assert!(
                    (got - want).abs() < 1e-3,
                    "n={n} nb={nb}: {got} vs {want} (f32 accuracy)"
                );
            }
        }
    }

    #[test]
    fn sgetrf_blocked_matches_unblocked() {
        let n = 48;
        let a0 = dd_matrix(n, 3);
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        let mut p1 = vec![0usize; n];
        let mut p2 = vec![0usize; n];
        sgetrf(&mut a1, &mut p1, 1).unwrap();
        sgetrf(&mut a2, &mut p2, 16).unwrap();
        assert_eq!(p1, p2);
        for j in 0..n {
            for i in 0..n {
                let (x, y) = (a1.get(i, j), a2.get(i, j));
                assert!(
                    (x - y).abs() <= 1e-4 * y.abs().max(1.0),
                    "({i},{j}): {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn singular_detected() {
        let mut a = SMatrix::zeros(4, 4);
        let mut piv = vec![0usize; 4];
        assert_eq!(
            sgetrf(&mut a, &mut piv, 2),
            Err(HplError::Singular { col: 0 })
        );
    }
}
