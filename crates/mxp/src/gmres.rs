//! Right-preconditioned restarted GMRES — the refinement scheme of the
//! HPL-MxP reference implementation: the Krylov iteration runs in `f64`
//! while the preconditioner applications go through the `f32` LU, so a
//! few inner iterations recover double-precision accuracy even where
//! classic refinement converges slowly.

use crate::ir::{scaled_residual, DenseOp, LowLu, MxpReport};

/// Parameters of the restarted solve.
#[derive(Clone, Copy, Debug)]
pub struct GmresParams {
    /// Krylov subspace dimension per restart cycle (HPL-MxP default: 50;
    /// small systems need far less).
    pub restart: usize,
    /// Maximum restart cycles.
    pub max_cycles: usize,
    /// Relative residual reduction target per the 2-norm (the HPL scaled
    /// residual is also checked each cycle).
    pub tol: f64,
}

impl Default for GmresParams {
    fn default() -> Self {
        Self {
            restart: 50,
            max_cycles: 8,
            tol: 1e-14,
        }
    }
}

fn nrm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Solves `A x = b` with right-preconditioned GMRES(m): the operator seen
/// by the Krylov space is `A M^{-1}`, with `M^{-1}` the `f32` LU solve.
pub fn solve_gmres(op: &DenseOp, lu: &LowLu, b: &[f64], params: GmresParams) -> MxpReport {
    let n = op.n();
    assert_eq!(b.len(), n);
    let m = params.restart.clamp(1, n);
    // Initial guess from the low-precision solve (as in HPL-MxP).
    let mut x = lu.apply(b);
    let mut last = scaled_residual(op, b, &x);
    let mut history = vec![last];
    let b_nrm = nrm2(b).max(f64::MIN_POSITIVE);

    'cycles: for _ in 0..params.max_cycles {
        if last < 16.0 && {
            let mut ax = vec![0.0; n];
            op.matvec(&x, &mut ax);
            let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
            nrm2(&r) / b_nrm < params.tol
        } {
            break;
        }
        // r0 = b - A x.
        let mut ax = vec![0.0; n];
        op.matvec(&x, &mut ax);
        let r0: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        let beta = nrm2(&r0);
        if beta / b_nrm < params.tol {
            break;
        }
        // Arnoldi with modified Gram-Schmidt on A M^{-1}.
        let mut v: Vec<Vec<f64>> = vec![r0.iter().map(|x| x / beta).collect()];
        let mut h: Vec<Vec<f64>> = Vec::new(); // h[j] has j + 2 entries
        let mut cs: Vec<f64> = Vec::new();
        let mut sn: Vec<f64> = Vec::new();
        let mut g = vec![beta];
        let mut ncols = 0usize;
        for j in 0..m {
            // w = A M^{-1} v_j.
            let z = lu.apply(&v[j]);
            let mut w = vec![0.0; n];
            op.matvec(&z, &mut w);
            let mut hj = vec![0.0f64; j + 2];
            for (i, vi) in v.iter().enumerate() {
                hj[i] = dot(&w, vi);
                for (wk, vk) in w.iter_mut().zip(vi) {
                    *wk -= hj[i] * vk;
                }
            }
            hj[j + 1] = nrm2(&w);
            // Apply the accumulated Givens rotations to the new column.
            for i in 0..j {
                let t = cs[i] * hj[i] + sn[i] * hj[i + 1];
                hj[i + 1] = -sn[i] * hj[i] + cs[i] * hj[i + 1];
                hj[i] = t;
            }
            // New rotation to annihilate hj[j + 1].
            let denom = (hj[j] * hj[j] + hj[j + 1] * hj[j + 1]).sqrt();
            let (c, s) = if denom == 0.0 {
                (1.0, 0.0)
            } else {
                (hj[j] / denom, hj[j + 1] / denom)
            };
            cs.push(c);
            sn.push(s);
            hj[j] = c * hj[j] + s * hj[j + 1];
            hj[j + 1] = 0.0;
            g.push(-s * g[j]);
            g[j] *= c;
            h.push(hj);
            ncols = j + 1;
            // `w` holds the unnormalized next basis vector; its norm is the
            // pre-rotation subdiagonal entry. A (near-)zero norm is the
            // "lucky breakdown": the Krylov space is invariant.
            let wnorm = nrm2(&w);
            let breakdown = wnorm < 1e-300;
            if !breakdown {
                v.push(w.iter().map(|x| x / wnorm).collect());
            }
            if g[j + 1].abs() / b_nrm < params.tol || breakdown {
                break;
            }
        }
        // Solve the small triangular system H y = g.
        let mut y = vec![0.0f64; ncols];
        for j in (0..ncols).rev() {
            let mut s = g[j];
            for (i, hi) in h.iter().enumerate().take(ncols).skip(j + 1) {
                s -= hi[j] * y[i];
            }
            y[j] = s / h[j][j];
        }
        // x += M^{-1} (V y).
        let mut vy = vec![0.0f64; n];
        for (j, yj) in y.iter().enumerate() {
            for (vyi, vji) in vy.iter_mut().zip(&v[j]) {
                *vyi += yj * vji;
            }
        }
        let corr = lu.apply(&vy);
        for (xi, ci) in x.iter_mut().zip(corr) {
            *xi += ci;
        }
        let prev = last;
        last = scaled_residual(op, b, &x);
        history.push(last);
        if history.len() > 2 && last < 16.0 && last >= prev * 0.99 {
            // Converged to working accuracy.
            break 'cycles;
        }
    }
    MxpReport {
        x,
        history,
        converged: last < 16.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(n: usize, seed: u64, dominance: f64) -> (DenseOp, Vec<f64>, Vec<f64>) {
        let mut s = seed | 1;
        let mut vals = Vec::with_capacity(n * n);
        for _ in 0..n * n {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            vals.push(((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5);
        }
        let op = DenseOp::new(n, |i, j| {
            let v = vals[j * n + i];
            if i == j {
                v + dominance
            } else {
                v
            }
        });
        let xtrue: Vec<f64> = (0..n)
            .map(|i| ((i * 5 + 2) % 11) as f64 * 0.5 - 2.0)
            .collect();
        let mut b = vec![0.0f64; n];
        op.matvec(&xtrue, &mut b);
        (op, b, xtrue)
    }

    #[test]
    fn gmres_reaches_double_precision() {
        let (op, b, xtrue) = system(250, 11, 3.0);
        let lu = LowLu::factor(&op, 32).unwrap();
        let rep = solve_gmres(
            &op,
            &lu,
            &b,
            GmresParams {
                restart: 20,
                ..Default::default()
            },
        );
        assert!(rep.converged, "history {:?}", rep.history);
        let err = rep
            .x
            .iter()
            .zip(&xtrue)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-9, "error {err:.3e}, history {:?}", rep.history);
    }

    #[test]
    fn gmres_matches_ir_on_easy_systems() {
        let (op, b, _) = system(150, 3, 4.0);
        let lu = LowLu::factor(&op, 32).unwrap();
        let g = solve_gmres(
            &op,
            &lu,
            &b,
            GmresParams {
                restart: 10,
                ..Default::default()
            },
        );
        let ir = crate::ir::solve_ir(&op, &lu, &b, 10);
        assert!(g.converged && ir.converged);
        for (a, b) in g.x.iter().zip(&ir.x) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn gmres_handles_weaker_dominance_than_ir() {
        // With a less dominant diagonal, classic IR needs more sweeps;
        // GMRES still converges in one or two cycles.
        let (op, b, xtrue) = system(200, 17, 1.2);
        let lu = LowLu::factor(&op, 32).unwrap();
        let g = solve_gmres(
            &op,
            &lu,
            &b,
            GmresParams {
                restart: 30,
                ..Default::default()
            },
        );
        assert!(g.converged, "history {:?}", g.history);
        let err =
            g.x.iter()
                .zip(&xtrue)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
        assert!(err < 1e-8, "error {err:.3e}");
    }
}
