//! The distributed HPL-MxP benchmark: `f32` elimination over the full
//! `rhpl-core` pipeline, `f64` iterative refinement over the resident
//! low-precision factors.
//!
//! [`solve_mxp`] runs the 2D block-cyclic LU — look-ahead, split update,
//! LBCAST, multi-threaded panel factorization, all of it — monomorphized
//! over `f32` via [`rhpl_core::factorize`], takes the `f32`-accurate
//! initial solution from the distributed back-substitution, and then
//! recovers `f64::EPSILON`-scaled accuracy with O(n^2) refinement sweeps:
//! the residual `b - A x` is evaluated in `f64` against a full-precision
//! regeneration of the system, and each correction is solved in `f32`
//! against the factors the elimination left resident
//! ([`rhpl_core::PipelineOut`]).
//!
//! The correction solve is the subtle part. HPL pivoting is
//! *trailing-only*: at panel `k` the row exchanges touch the panel and the
//! columns to its right, never the already-factored `L` columns to the
//! left. A fresh right-hand side therefore cannot be permuted up front
//! (LAPACK `getrs` style); [`replay_solve`] instead replays history — it
//! applies panel `k`'s recorded exchanges, eliminates with panel `k`'s
//! `L`, and only then moves to panel `k + 1`, exactly the order the
//! factorization processed its own (appended) right-hand side.

use std::time::Instant;

use hpl_comm::{Communicator, Grid, Op};
use rhpl_core::solve::distributed_matvec;
use rhpl_core::{
    back_substitute, factorize, verify_with_eps, HplConfig, HplError, IterTiming, LocalMatrix,
    MatGen, Residuals,
};

/// Refinement controls.
#[derive(Clone, Copy, Debug)]
pub struct MxpParams {
    /// Maximum refinement sweeps after the initial `f32` solve. Classic
    /// refinement gains roughly a factor `1 / (eps_f32 * kappa(A))` per
    /// sweep, so HPL-grade random systems converge in a handful.
    pub max_sweeps: usize,
}

impl Default for MxpParams {
    fn default() -> Self {
        Self { max_sweeps: 12 }
    }
}

/// Result of a distributed mixed-precision run on one rank.
pub struct MxpOutput {
    /// The refined solution, replicated on every rank.
    pub x: Vec<f64>,
    /// Scaled residual (HPL formula, `f64::EPSILON`) after the initial
    /// `f32` solve and after each refinement sweep.
    pub history: Vec<f64>,
    /// Refinement sweeps actually applied (`history.len() - 1`).
    pub sweeps: usize,
    /// Whether the final residual beat HPL's threshold (16.0) — i.e. the
    /// mixed-precision solve reached double accuracy.
    pub converged: bool,
    /// The final residual gate, recomputed against a fresh regeneration of
    /// the system with `f64::EPSILON` scaling.
    pub residuals: Residuals,
    /// Wall time of the `f32` factorization + initial solve (seconds).
    pub fact_seconds: f64,
    /// Total wall time including the refinement sweeps (seconds).
    pub wall: f64,
    /// Mixed-precision GFLOPS: the HPL flop count over the *total* time to
    /// a double-accurate solution (what HPL-MxP reports).
    pub gflops: f64,
    /// GFLOPS of the `f32` factorization + initial solve alone.
    pub fact_gflops: f64,
    /// Per-iteration timings of the elimination recorded by this rank.
    pub timings: Vec<IterTiming>,
    /// Phase trace of this rank (when `cfg.trace.enabled`).
    pub trace: Option<hpl_trace::Trace>,
    /// Name of the DGEMM microkernel the run resolved to.
    pub kernel: &'static str,
    /// Element precision of the factorization (always `"f32"` here).
    pub element: &'static str,
    /// Timed-out receive polls this rank retried with backoff.
    pub retries: u64,
}

/// Runs the distributed HPL-MxP benchmark on the seeded generator system
/// of `cfg` (the same matrix family the `f64` benchmark factors).
/// Collective: call from every rank of `comm`.
pub fn solve_mxp(comm: Communicator, cfg: &HplConfig) -> Result<MxpOutput, HplError> {
    let gen = MatGen::new(cfg.seed, cfg.n);
    solve_mxp_with(comm, cfg, MxpParams::default(), &|i, j| gen.entry(i, j))
}

/// [`solve_mxp`] for a caller-supplied system: `fill(i, j)` must be a pure
/// function of the global indices (column `n` is the right-hand side), the
/// same contract as [`rhpl_core::run_hpl_with`].
pub fn solve_mxp_with(
    comm: Communicator,
    cfg: &HplConfig,
    params: MxpParams,
    fill: &(dyn Fn(usize, usize) -> f64 + Sync),
) -> Result<MxpOutput, HplError> {
    cfg.validate();
    let grid = Grid::new(comm, cfg.p, cfg.q, cfg.order);
    hpl_trace::install(cfg.trace);
    let out = refine_pipeline(&grid, cfg, &params, fill);
    let trace = hpl_trace::take();
    let mut out = out?;
    out.trace = trace;
    out.retries = grid.world().comm_retries();
    Ok(out)
}

/// The factor-then-refine pipeline body (tracing owned by the caller).
fn refine_pipeline(
    grid: &Grid,
    cfg: &HplConfig,
    params: &MxpParams,
    fill: &(dyn Fn(usize, usize) -> f64 + Sync),
) -> Result<MxpOutput, HplError> {
    let n = cfg.n;
    let t0 = Instant::now();
    let out = factorize::<f32>(grid, cfg, fill)?;
    let x0 = back_substitute(&out.a, grid, cfg.nb)?;
    let fact_seconds = t0.elapsed().as_secs_f64();

    // The factorization destroyed its demoted copy of the system in place;
    // residuals are evaluated against a full-precision regeneration.
    let a64 = LocalMatrix::<f64>::generate_with(n, cfg.nb, grid, fill);
    let b: Vec<f64> = (0..n).map(|i| fill(i, n)).collect();
    let b_inf = b.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let a_inf = inf_norm(&a64, grid)?;

    let mut x: Vec<f64> = x0.iter().map(|&v| f64::from(v)).collect();
    let mut history = Vec::new();
    let mut converged = false;
    for sweep in 0..=params.max_sweeps {
        let ax = distributed_matvec(&a64, grid, &x)?;
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        let err_inf = r.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let x_inf = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let scaled = err_inf / (f64::EPSILON * (a_inf * x_inf + b_inf) * n as f64);
        history.push(scaled);
        if scaled < Residuals::THRESHOLD {
            converged = true;
            break;
        }
        if sweep == params.max_sweeps {
            break;
        }
        // Correction solve on the resident f32 factors; x += delta in f64.
        let mut d: Vec<f32> = r.iter().map(|&v| v as f32).collect();
        replay_solve(&out.a, &out.pivot_log, grid, cfg.nb, &mut d)?;
        for (xi, &di) in x.iter_mut().zip(&d) {
            *xi += f64::from(di);
        }
    }

    let residuals = verify_with_eps(grid, n, cfg.nb, fill, &x, f64::EPSILON)?;
    let wall = t0.elapsed().as_secs_f64();
    Ok(MxpOutput {
        x,
        sweeps: history.len().saturating_sub(1),
        history,
        converged,
        residuals,
        fact_seconds,
        wall,
        gflops: cfg.flops() / wall / 1e9,
        fact_gflops: cfg.flops() / fact_seconds / 1e9,
        timings: out.timings,
        trace: None,
        kernel: hpl_blas::kernels::active().name(),
        element: "f32",
        retries: 0,
    })
}

/// `||A||_inf` of the distributed original system (excluding the appended
/// `b` column), replicated on every rank.
fn inf_norm(a: &LocalMatrix<f64>, grid: &Grid) -> Result<f64, HplError> {
    let n = a.rows.n;
    let av = a.view();
    let mut row_sums = vec![0.0f64; a.mloc];
    for lj in 0..a.nloc {
        if a.cols.to_global(lj) >= n {
            continue;
        }
        for (s, &v) in row_sums.iter_mut().zip(av.col(lj)) {
            *s += v.abs();
        }
    }
    hpl_comm::allreduce(grid.row(), Op::Sum, &mut row_sums)?;
    let mut m = [row_sums.into_iter().fold(0.0f64, f64::max)];
    hpl_comm::allreduce(grid.col(), Op::Max, &mut m)?;
    Ok(m[0])
}

/// Solves `L U d = P r` against the resident `f32` factors of
/// [`rhpl_core::factorize`], replaying the recorded pivot history panel by
/// panel. Collective over the grid; `r` must be replicated (identical on
/// every rank) on entry and holds the replicated solution on exit.
///
/// The forward sweep interleaves exchanges and elimination (see the module
/// docs): panel `k`'s stored `L` columns live in the row order after
/// panels `0..=k`'s swaps and before any later panel's, so the right-hand
/// side is swapped with panel `k`'s exchanges immediately before panel
/// `k`'s columns eliminate into it. The backward `U` sweep has no
/// exchanges to replay.
///
/// All arithmetic runs in `f32` (this is the preconditioner application of
/// the refinement scheme). Replication uses disjoint-support sum
/// allreduces — every entry has exactly one rank contributing a nonzero,
/// so the reduction is order-exact and the result bitwise identical on
/// every rank and transport.
pub fn replay_solve(
    a: &LocalMatrix<f32>,
    pivot_log: &[u64],
    grid: &Grid,
    nb: usize,
    r: &mut [f32],
) -> Result<(), HplError> {
    let n = a.rows.n;
    assert_eq!(r.len(), n, "right-hand side must have length n");
    assert_eq!(pivot_log.len(), n, "pivot log must cover every column");
    let av = a.view();
    let nblocks = n.div_ceil(nb);

    // Forward: d = L^{-1} P r, replaying exchanges panel by panel.
    for kblk in 0..nblocks {
        let k0 = kblk * nb;
        let jb = nb.min(n - k0);
        for j in 0..jb {
            r.swap(k0 + j, pivot_log[k0 + j] as usize);
        }
        let prow = a.rows.owner(k0);
        let pcol = a.cols.owner(k0);
        // Unit-lower solve of the jb x jb diagonal block at its owner.
        let mut y = vec![0.0f32; jb];
        if grid.myrow() == prow && grid.mycol() == pcol {
            let li = a.rows.to_local(k0);
            let lj = a.cols.to_local(k0);
            for i in 0..jb {
                let mut s = r[k0 + i];
                for (j, &yj) in y.iter().enumerate().take(i) {
                    s -= av.col(lj + j)[li + i] * yj;
                }
                y[i] = s;
            }
        }
        hpl_comm::allreduce(grid.world(), Op::Sum, &mut y)?;
        r[k0..k0 + jb].copy_from_slice(&y);
        // Trailing entries: r[base..] -= L21 * y; column pcol owns L21.
        let base = k0 + jb;
        if base < n {
            let mut delta = vec![0.0f32; n - base];
            if grid.mycol() == pcol {
                let lj = a.cols.to_local(k0);
                let lb = a.rows.local_lower_bound(base);
                for (j, &yj) in y.iter().enumerate() {
                    if yj != 0.0 {
                        let col = av.col(lj + j);
                        for li in lb..a.mloc {
                            delta[a.rows.to_global(li) - base] += col[li] * yj;
                        }
                    }
                }
            }
            hpl_comm::allreduce(grid.world(), Op::Sum, &mut delta)?;
            for (ri, &di) in r[base..].iter_mut().zip(&delta) {
                *ri -= di;
            }
        }
    }

    // Backward: d = U^{-1} d (no exchanges).
    for kblk in (0..nblocks).rev() {
        let k0 = kblk * nb;
        let jb = nb.min(n - k0);
        let prow = a.rows.owner(k0);
        let pcol = a.cols.owner(k0);
        // Upper (non-unit) solve of the diagonal block at its owner.
        let mut xk = vec![0.0f32; jb];
        if grid.myrow() == prow && grid.mycol() == pcol {
            let li = a.rows.to_local(k0);
            let lj = a.cols.to_local(k0);
            for i in (0..jb).rev() {
                let mut s = r[k0 + i];
                for j in i + 1..jb {
                    s -= av.col(lj + j)[li + i] * xk[j];
                }
                xk[i] = s / av.col(lj + i)[li + i];
            }
        }
        hpl_comm::allreduce(grid.world(), Op::Sum, &mut xk)?;
        r[k0..k0 + jb].copy_from_slice(&xk);
        // Entries above the block: r[..k0] -= U01 * xk.
        if k0 > 0 {
            let mut delta = vec![0.0f32; k0];
            if grid.mycol() == pcol {
                let lj = a.cols.to_local(k0);
                let above = a.rows.local_lower_bound(k0);
                for (j, &xj) in xk.iter().enumerate() {
                    if xj != 0.0 {
                        let col = av.col(lj + j);
                        for li in 0..above {
                            delta[a.rows.to_global(li)] += col[li] * xj;
                        }
                    }
                }
            }
            hpl_comm::allreduce(grid.world(), Op::Sum, &mut delta)?;
            for (ri, &di) in r[..k0].iter_mut().zip(&delta) {
                *ri -= di;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_comm::Universe;
    use rhpl_core::Schedule;

    #[test]
    fn mxp_recovers_double_accuracy() {
        let cfg = HplConfig::new(120, 16, 2, 2);
        let outs = Universe::run(4, |comm| solve_mxp(comm, &cfg).expect("nonsingular"));
        for o in &outs {
            assert!(o.converged, "history {:?}", o.history);
            assert!(o.residuals.passed(), "scaled {:.3e}", o.residuals.scaled);
            // The pure f32 solve must FAIL the f64-eps gate at this size,
            // otherwise the refinement demonstrates nothing.
            assert!(
                o.history[0] > Residuals::THRESHOLD,
                "f32 solve alone must not pass the f64 gate: {:?}",
                o.history
            );
            assert!(o.sweeps >= 1, "refinement applied no correction");
            assert_eq!(o.element, "f32");
        }
        // Solution and history bitwise replicated across ranks.
        for o in &outs[1..] {
            assert_eq!(o.x, outs[0].x);
            assert_eq!(o.history, outs[0].history);
        }
    }

    #[test]
    fn mxp_bitwise_identical_across_schedules() {
        // The f32 factors are bitwise schedule-independent (rhpl-core e2e),
        // and the refinement is deterministic on top of them.
        let mut base: Option<Vec<f64>> = None;
        for schedule in [
            Schedule::Simple,
            Schedule::LookAhead,
            Schedule::SplitUpdate { frac: 0.5 },
        ] {
            let mut cfg = HplConfig::new(96, 16, 2, 2);
            cfg.seed = 31;
            cfg.schedule = schedule;
            let outs = Universe::run(4, |comm| solve_mxp(comm, &cfg).expect("nonsingular"));
            match &base {
                None => base = Some(outs[0].x.clone()),
                Some(want) => assert_eq!(&outs[0].x, want, "schedule {schedule:?} diverged"),
            }
        }
    }

    #[test]
    fn replay_solve_matches_backsubstitution() {
        // Solving the original right-hand side through the pivot replay
        // must land on (approximately) the same f32 solution the pipeline's
        // own back-substitution produced from the co-eliminated b column.
        let cfg = HplConfig::new(64, 16, 2, 2);
        let outs = Universe::run(4, |comm| {
            let grid = Grid::new(comm, cfg.p, cfg.q, cfg.order);
            let gen = MatGen::new(cfg.seed, cfg.n);
            let fill = |i: usize, j: usize| gen.entry(i, j);
            let out = factorize::<f32>(&grid, &cfg, &fill).expect("nonsingular");
            let x0 = back_substitute(&out.a, &grid, cfg.nb).expect("solvable");
            let mut r: Vec<f32> = (0..cfg.n).map(|i| fill(i, cfg.n) as f32).collect();
            replay_solve(&out.a, &out.pivot_log, &grid, cfg.nb, &mut r).expect("solvable");
            (x0, r)
        });
        for (x0, r) in &outs {
            let x_inf = x0.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            for (a, b) in x0.iter().zip(r) {
                assert!(
                    (a - b).abs() <= 1e-2 * x_inf.max(1.0),
                    "{a} vs {b} (x_inf {x_inf})"
                );
            }
        }
        // And the replayed solution is bitwise replicated.
        for (_, r) in &outs[1..] {
            assert_eq!(r, &outs[0].1);
        }
    }

    #[test]
    fn singular_matrix_surfaces_typed_error() {
        let cfg = HplConfig::new(16, 4, 1, 1);
        let outs = Universe::run(1, |comm| {
            solve_mxp_with(comm, &cfg, MxpParams::default(), &|_, _| 0.0).map(|o| o.x)
        });
        assert_eq!(outs[0], Err(HplError::Singular { col: 0 }));
    }
}
