//! Criterion bench: the LBCAST algorithm variants over a 6-rank row
//! communicator, backing the broadcast-selection discussion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpl_comm::{panel_bcast, BcastAlgo, Universe};

fn bench_bcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("panel_bcast");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    let len = 64 * 1024;
    for algo in BcastAlgo::ALL {
        g.throughput(Throughput::Bytes((len * 8) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(algo.name()), &(), |bch, _| {
            bch.iter(|| {
                Universe::run(6, |comm| {
                    let mut buf = vec![1.0f64; len];
                    panel_bcast(&comm, algo, 0, &mut buf).expect("broadcast");
                    buf[len - 1]
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bcast);
criterion_main!(benches);
