//! Criterion bench: the row-swap phase (plan building + scatterv +
//! allgatherv + kernels) over a 4-rank process column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpl_blas::mat::Matrix;
use hpl_comm::Universe;
use rhpl_core::dist::Axis;
use rhpl_core::swap::{row_swap, ColRange, RowSwapAlgo, SwapPlan};

fn bench_rowswap(c: &mut Criterion) {
    let mut g = c.benchmark_group("row_swap");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    let p = 4usize;
    let nb = 32usize;
    for &cols in &[64usize, 256] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("w{cols}")),
            &(),
            |bch, _| {
                bch.iter(|| {
                    Universe::run(p, |comm| {
                        let n = 512usize;
                        let rows = Axis {
                            n,
                            nb,
                            iproc: comm.rank(),
                            nprocs: p,
                        };
                        let mloc = rows.local_len();
                        let mut a = Matrix::from_fn(mloc, cols, |i, j| (i * cols + j) as f64);
                        // Pivots: reverse-ish pattern exercising all ranks.
                        let ipiv: Vec<usize> = (0..nb).map(|k| k + (n - nb - k) / 2).collect();
                        let plan = SwapPlan::build(0, nb, &ipiv);
                        let mut av = a.view_mut();
                        let u = row_swap(
                            &comm,
                            rows,
                            &plan,
                            0,
                            &mut av,
                            ColRange {
                                start: 0,
                                end: cols,
                            },
                            RowSwapAlgo::Ring,
                        );
                        u.expect("row swap").get(0, 0)
                    })
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_rowswap);
criterion_main!(benches);
