//! Criterion bench: mixed-precision factorization vs double precision —
//! the FLOP-rate gap that makes HPL-MxP several times faster than HPL on
//! the same hardware (scalar CPUs show ~2x from bandwidth and vector
//! width; MI250X matrix engines show ~4x).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpl_blas::getrf;
use hpl_blas::mat::Matrix;
use hpl_mxp::{sgetrf, SMatrix};

fn bench_mxp(c: &mut Criterion) {
    let mut g = c.benchmark_group("lu_precision");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &[128usize, 256] {
        let flops = (2 * n * n * n / 3) as u64;
        let fill =
            |i: usize, j: usize| ((i * 31 + j * 17) % 23) as f64 + if i == j { 64.0 } else { 0.0 };
        g.throughput(Throughput::Elements(flops));
        g.bench_with_input(BenchmarkId::new("fp64", n), &(), |b, _| {
            b.iter(|| {
                let mut a = Matrix::from_fn(n, n, fill);
                let mut piv = vec![0usize; n];
                let mut v = a.view_mut();
                getrf(&mut v, &mut piv, 32).unwrap();
                a.get(n - 1, n - 1)
            })
        });
        g.bench_with_input(BenchmarkId::new("fp32", n), &(), |b, _| {
            b.iter(|| {
                let mut a = SMatrix::from_fn(n, n, fill);
                let mut piv = vec![0usize; n];
                sgetrf(&mut a, &mut piv, 32).unwrap();
                a.get(n - 1, n - 1)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mxp);
criterion_main!(benches);
