//! Criterion bench: multi-threaded panel factorization (the Fig 5 kernel)
//! at several panel heights and thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpl_blas::mat::Matrix;
use hpl_comm::Universe;
use rhpl_core::fact::{panel_factor, FactInput};
use rhpl_core::{FactOpts, FactVariant, MatGen};

fn bench_fact(c: &mut Criterion) {
    let nb = 64usize;
    let mut g = c.benchmark_group("fact_mt");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    for &m in &[512usize, 2048] {
        for &threads in &[1usize, 2, 4] {
            let flops = (m * nb * nb) as u64;
            g.throughput(Throughput::Elements(flops));
            g.bench_with_input(
                BenchmarkId::from_parameter(format!("m{m}_t{threads}")),
                &(),
                |bch, _| {
                    bch.iter(|| {
                        Universe::run(1, |comm| {
                            let pool = hpl_threads::Pool::new(threads);
                            let gen = MatGen::new(3, m);
                            let mut panel = Matrix::from_fn(m, nb, |i, j| gen.entry(i, j));
                            let inp = FactInput {
                                col_comm: &comm,
                                rows: rhpl_core::dist::Axis {
                                    n: m,
                                    nb,
                                    iproc: 0,
                                    nprocs: 1,
                                },
                                k0: 0,
                                jb: nb,
                                lb: 0,
                                is_curr: true,
                                pool: &pool,
                                opts: FactOpts {
                                    variant: FactVariant::Right,
                                    ndiv: 2,
                                    nbmin: 16,
                                    threads,
                                },
                            };
                            let mut v = panel.view_mut();
                            panel_factor(&inp, &mut v).expect("nonsingular");
                        });
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fact);
criterion_main!(benches);
