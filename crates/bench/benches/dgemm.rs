//! Criterion bench: the trailing-update DGEMM kernel across the shapes HPL
//! produces (tall C, k = NB), backing the §IV.A DGEMM-rate discussion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpl_blas::mat::Matrix;
use hpl_blas::{dgemm, Trans};

fn bench_dgemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("dgemm_update");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    for &(m, n, k) in &[
        (256usize, 256usize, 64usize),
        (512, 512, 64),
        (512, 512, 128),
        (1024, 512, 128),
    ] {
        let a = Matrix::from_fn(m, k, |i, j| ((i + j) % 7) as f64 * 0.1 - 0.3);
        let b = Matrix::from_fn(k, n, |i, j| ((i * 3 + j) % 5) as f64 * 0.2 - 0.4);
        let mut cm = Matrix::zeros(m, n);
        g.throughput(Throughput::Elements((2 * m * n * k) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}x{k}")),
            &(),
            |bch, _| {
                bch.iter(|| {
                    let mut cv = cm.view_mut();
                    dgemm(Trans::No, Trans::No, -1.0, a.view(), b.view(), 1.0, &mut cv);
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_dgemm);
criterion_main!(benches);
