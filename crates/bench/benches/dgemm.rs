//! Criterion bench: the trailing-update GEMM kernel across the shapes HPL
//! produces (tall C, k = NB), backing the §IV.A DGEMM-rate discussion.
//! Each shape runs once per available microkernel (`scalar` always,
//! `simd` when the CPU has one) and per element type (`f64` classic HPL,
//! `f32` the HPL-MxP factorization precision) so both the per-kernel and
//! the per-precision GFLOPS gaps are visible in the criterion report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpl_blas::mat::Matrix;
use hpl_blas::{dgemm_with, Element, Kernel, Trans};

const SHAPES: &[(usize, usize, usize)] = &[
    (256, 256, 64),
    (512, 512, 64),
    (512, 512, 128),
    (1024, 512, 128),
];

fn bench_element<E: Element>(c: &mut Criterion) {
    let kernels: Vec<Kernel> = [Kernel::scalar()]
        .into_iter()
        .chain(Kernel::simd())
        .collect();
    for kern in kernels {
        let mut g = c.benchmark_group(format!("dgemm_update/{}/{}", E::NAME, kern.name()));
        g.sample_size(10);
        g.measurement_time(std::time::Duration::from_secs(2));
        g.warm_up_time(std::time::Duration::from_millis(300));
        for &(m, n, k) in SHAPES {
            let a =
                Matrix::<E>::from_fn(m, k, |i, j| E::from_f64(((i + j) % 7) as f64 * 0.1 - 0.3));
            let b = Matrix::<E>::from_fn(k, n, |i, j| {
                E::from_f64(((i * 3 + j) % 5) as f64 * 0.2 - 0.4)
            });
            let mut cm = Matrix::<E>::zeros(m, n);
            g.throughput(Throughput::Elements((2 * m * n * k) as u64));
            g.bench_with_input(
                BenchmarkId::from_parameter(format!("{m}x{n}x{k}")),
                &(),
                |bch, _| {
                    bch.iter(|| {
                        let mut cv = cm.view_mut();
                        dgemm_with(
                            kern,
                            Trans::No,
                            Trans::No,
                            E::from_f64(-1.0),
                            a.view(),
                            b.view(),
                            E::ONE,
                            &mut cv,
                        );
                    })
                },
            );
        }
        g.finish();
    }
}

fn bench_dgemm(c: &mut Criterion) {
    bench_element::<f64>(c);
    bench_element::<f32>(c);
}

criterion_group!(benches, bench_dgemm);
criterion_main!(benches);
