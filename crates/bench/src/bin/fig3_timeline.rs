//! Fig 3 — execution timeline of one iteration under the look-ahead
//! schedule: renders the modeled Gantt chart (GPU / CPU / transfer / MPI
//! rows) at a chosen iteration of the paper's single-node run, showing
//! FACT and LBCAST hidden under the trailing UPDATE while the row-swap
//! communication remains exposed.

use hpl_bench::{arg_value, emit_json};
use hpl_sim::{iteration_spans, render, NodeModel, Pipeline, RunParams, Simulator};

fn main() {
    let it: usize = arg_value("--iter").unwrap_or(50);
    let sim = Simulator::new(NodeModel::frontier(), RunParams::paper_single_node());
    let spans = iteration_spans(&sim, it, Pipeline::LookAhead);
    println!("Fig 3 (model): look-ahead iteration timeline, iteration {it} of the");
    println!("paper single-node run (N=256000, NB=512, 4x2). RS is exposed; the");
    println!("host chain (D2H, FACT, H2D, LBCAST) hides under UPDATE.\n");
    print!("{}", render(&spans, 100));
    let rec = sim.iter_record(it, Pipeline::LookAhead);
    println!(
        "\niteration: {:.2} ms total, {:.2} ms GPU-active, exposure {:.2} ms",
        rec.time * 1e3,
        rec.gpu_active * 1e3,
        (rec.time - rec.gpu_active).max(0.0) * 1e3
    );
    emit_json(
        "fig3_spans",
        &spans
            .iter()
            .map(|s| (s.row, s.label, s.start, s.len))
            .collect::<Vec<_>>(),
    );
}
