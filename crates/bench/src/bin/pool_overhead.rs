//! Diagnostic: fork-join region + barrier overhead of the FACT thread
//! pool, per region width. On a multi-core host this is the fixed cost the
//! §III.A multithreading must amortize per panel column; on a single-core
//! host it also quantifies the time-slicing penalty that makes *measured*
//! thread scaling impossible (see fig5_fact_scaling's note).

use std::time::Instant;

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|x| x.get())
        .unwrap_or(1);
    println!("host parallelism: {cores}");
    let pool = hpl_threads::Pool::new(8);
    for t in [1usize, 2, 4, 8] {
        let iters = 1000;
        let t0 = Instant::now();
        for _ in 0..iters {
            pool.run(t, |ctx| {
                ctx.barrier();
                ctx.reduce_maxloc(1.0, ctx.thread_id());
                ctx.barrier();
            });
        }
        println!(
            "T={t}: {:.2} us per region (4 barrier crossings each)",
            t0.elapsed().as_secs_f64() / iters as f64 * 1e6
        );
    }
}
