//! §III.B in-text anchor — CPU core time sharing.
//!
//! Prints the thread-binding table the rocHPL launch wrapper computes for
//! node-local grids on a 64-core socket: every FACT phase uses
//! `P + C̄ = P + (C - PQ)` cores via `T = 1 + C̄/P` threads per
//! participating rank, including the paper's worked 2x4 example (42 idle
//! cores without sharing, none with it).

use hpl_bench::{arg_value, emit_json, row};
use hpl_threads::{fact_cores, max_core_sharing, time_shared_bindings};
use serde::Serialize;

#[derive(Serialize)]
struct GridRow {
    p: usize,
    q: usize,
    threads_per_rank: usize,
    fact_cores: usize,
    idle_during_fact: usize,
    max_sharing: usize,
}

fn main() {
    let cores: usize = arg_value("--cores").unwrap_or(64);
    println!("CPU core time sharing on a {cores}-core socket (paper SIII.B)");
    println!("T = 1 + (C - PQ)/P threads per rank; every FACT uses P + C-PQ cores\n");
    let widths = [8usize, 8, 12, 12, 10];
    println!(
        "{}",
        row(
            &["grid", "T", "FACT cores", "idle cores", "sharing"],
            &widths
        )
    );
    let mut rows = Vec::new();
    for (p, q) in [(8usize, 1usize), (4, 2), (2, 4), (1, 8)] {
        let b = time_shared_bindings(p, q, cores).expect("valid grid");
        let t = b[0].threads();
        let used = fact_cores(&b, p, 0);
        let idle = cores - used;
        let share = max_core_sharing(&b, cores);
        println!(
            "{}",
            row(
                &[
                    format!("{p}x{q}"),
                    format!("{t}"),
                    format!("{used}"),
                    format!("{idle}"),
                    format!("{share}x"),
                ],
                &widths
            )
        );
        rows.push(GridRow {
            p,
            q,
            threads_per_rank: t,
            fact_cores: used,
            idle_during_fact: idle,
            max_sharing: share,
        });
    }
    println!("\nwithout sharing (8 cores per rank, 2x4 grid): 2 ranks x 8 = 16 FACT");
    println!("cores + 6 idle root cores => 42 idle cores, the paper's example.");
    emit_json("core_binding", &rows);
}
