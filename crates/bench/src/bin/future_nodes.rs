//! The paper's Discussion-section claim, quantified: "as the improvement
//! of computational throughput outpaces inter-process communication
//! performance, the performance bottlenecks shift ... and lowers overall
//! performance, as measured by efficiency of peak computational
//! throughput."
//!
//! We run the calibrated single-node model on hypothetical future nodes
//! where GPU compute doubles `G` times per generation while network
//! bandwidth doubles only `W <= G` times, and report the achieved fraction
//! of the node's DGEMM limit plus the communication-hidden fraction — both
//! must decay as the compute/network gap widens.

use hpl_bench::{emit_json, row};
use hpl_sim::{NodeModel, Pipeline, RunParams, Simulator};
use serde::Serialize;

#[derive(Serialize)]
struct GenRow {
    label: String,
    tflops: f64,
    dgemm_limit: f64,
    efficiency: f64,
    hidden_time: f64,
}

fn main() {
    println!("Future accelerated nodes (paper SV): compute doublings vs network doublings");
    println!("(single-node model, HBM-filling N, NB=512, 4x2 grid, split update)\n");
    let widths = [26usize, 10, 12, 12, 12];
    println!(
        "{}",
        row(
            &["node", "TFLOPS", "DGEMM limit", "% of limit", "hidden time"],
            &widths
        )
    );
    let mut out = Vec::new();
    for (label, compute_gen, net_gen) in [
        ("Frontier (baseline)", 0u32, 0u32),
        ("+1 compute, +1 net", 1, 1),
        ("+1 compute, +0 net", 1, 0),
        ("+2 compute, +1 net", 2, 1),
        ("+2 compute, +0 net", 2, 0),
        ("+3 compute, +1 net", 3, 1),
    ] {
        let node = NodeModel::future(compute_gen, net_gen);
        let mut params = RunParams::paper_single_node();
        params.n = node.fill_hbm_n(1);
        let sim = Simulator::new(node, params);
        let r = sim.run(Pipeline::SplitUpdate);
        // Node DGEMM limit at NB=512 (the paper's 196 TF figure for
        // Frontier).
        let limit = node.gcds as f64
            * node
                .dgemm
                .flops_rate(params.n as f64 / 4.0, params.n as f64 / 2.0, 512.0)
            / 1e12;
        let eff = r.tflops / limit;
        println!(
            "{}",
            row(
                &[
                    label.to_string(),
                    format!("{:.0}", r.tflops),
                    format!("{:.0}", limit),
                    format!("{:.1}%", eff * 100.0),
                    format!("{:.2}", r.hidden_time_fraction),
                ],
                &widths
            )
        );
        out.push(GenRow {
            label: label.to_string(),
            tflops: r.tflops,
            dgemm_limit: limit,
            efficiency: eff,
            hidden_time: r.hidden_time_fraction,
        });
    }
    println!("\npaper SV: widening the compute/network gap pushes the benchmark into the");
    println!("latency- and communication-dominated regime and lowers the achieved");
    println!("fraction of peak — the motivation for its future-work discussion.");
    // The headline monotonicity, asserted so the binary doubles as a check.
    let base = out[0].efficiency;
    let balanced = out[1].efficiency;
    let skewed = out[4].efficiency;
    assert!(
        skewed < balanced && skewed < base,
        "efficiency must degrade when compute outpaces the network: \
         base {base:.3}, balanced {balanced:.3}, skewed {skewed:.3}"
    );
    emit_json("future_nodes", &out);
}
