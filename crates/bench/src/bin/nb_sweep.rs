//! §IV.A in-text anchor — the blocking-factor balance.
//!
//! "The block size NB should be chosen at least large enough that the
//! large DGEMM computations reach a high percentage of peak ... while
//! choosing NB as small as possible allows for maximal overlap": the score
//! as a function of NB must rise (DGEMM efficiency), peak near the paper's
//! NB = 512, and fall again (panels too coarse to overlap / factor).
//! Default prints the model sweep at paper scale; `--functional` runs real
//! scaled-down benchmarks over NB.

use hpl_bench::{arg_value, emit_json, has_flag, row};
use hpl_comm::Universe;
use hpl_sim::{NodeModel, Pipeline, RunParams, Simulator};
use rhpl_core::config::Schedule;
use rhpl_core::{run_hpl, HplConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    nb: usize,
    tflops: f64,
}

fn main() {
    if has_flag("--functional") {
        functional();
    } else {
        model();
    }
}

fn model() {
    println!("NB sweep (model), paper single-node configuration");
    println!("paper: NB = 512 chosen to balance DGEMM rate vs overlap granularity\n");
    let node = NodeModel::frontier();
    let widths = [6usize, 10];
    println!("{}", row(&["NB", "TFLOPS"], &widths));
    let mut pts = Vec::new();
    let mut best = (0usize, 0.0f64);
    for nb in [64usize, 128, 256, 384, 512, 768, 1024, 2048] {
        let mut params = RunParams::paper_single_node();
        params.nb = nb;
        let r = Simulator::new(node, params).run(Pipeline::SplitUpdate);
        println!(
            "{}",
            row(&[format!("{nb}"), format!("{:.1}", r.tflops)], &widths)
        );
        if r.tflops > best.1 {
            best = (nb, r.tflops);
        }
        pts.push(Point {
            nb,
            tflops: r.tflops,
        });
    }
    println!(
        "\noptimum at NB = {} ({:.1} TF) — paper uses 512",
        best.0, best.1
    );
    emit_json("nb_sweep_model", &pts);
}

fn functional() {
    let n: usize = arg_value("--n").unwrap_or(576);
    println!("NB sweep (functional), N={n} 2x2, split 50%");
    let widths = [6usize, 12];
    println!("{}", row(&["NB", "GFLOPS"], &widths));
    let mut pts = Vec::new();
    for nb in [8usize, 16, 24, 32, 48, 64, 96] {
        let mut cfg = HplConfig::new(n - n % nb, nb, 2, 2);
        cfg.schedule = Schedule::SplitUpdate { frac: 0.5 };
        let results = Universe::run(cfg.ranks(), |comm| {
            run_hpl(comm, &cfg).expect("nonsingular")
        });
        let g = results[0].gflops;
        println!("{}", row(&[format!("{nb}"), format!("{g:.2}")], &widths));
        pts.push(Point {
            nb,
            tflops: g / 1e3,
        });
    }
    emit_json("nb_sweep_functional", &pts);
}
