//! §IV.A in-text anchor — DGEMM rates vs blocking factor.
//!
//! The paper quotes 49 TFLOPS per MI250X for the NB=512 trailing-update
//! DGEMMs and motivates NB=512 as the balance point between DGEMM
//! efficiency and communication granularity. This binary prints the modeled
//! per-module rate across NB values (default), and with `--measured` the
//! real hpl-blas DGEMM GFLOPS on this host across the same shapes scaled
//! down — the *shape* (rates rising and saturating with NB) is the
//! reproduction target.

use std::time::Instant;

use hpl_bench::{emit_json, has_flag, row};
use hpl_blas::mat::Matrix;
use hpl_blas::{dgemm_with, Element, Kernel, MatRef, Trans};
use hpl_sim::DgemmModel;
use serde::Serialize;

#[derive(Serialize)]
struct Rate {
    nb: usize,
    gflops: f64,
}

#[derive(Serialize)]
struct KernelRate {
    nb: usize,
    scalar_gflops: f64,
    simd_gflops: Option<f64>,
    speedup: Option<f64>,
    scalar_f32_gflops: f64,
    simd_f32_gflops: Option<f64>,
    /// f32 SIMD rate over f64 SIMD rate — the HPL-MxP throughput lever.
    f32_over_f64: Option<f64>,
}

fn main() {
    if has_flag("--measured") {
        measured();
    } else {
        model();
    }
}

fn model() {
    let m = DgemmModel::default();
    println!("DGEMM rate vs NB (model, per MI250X module = 2 GCDs)");
    println!("paper anchor: 49 TFLOPS at NB = 512 for large trailing updates\n");
    let widths = [6usize, 14];
    println!("{}", row(&["NB", "TFLOPS/module"], &widths));
    let mut rates = Vec::new();
    for nb in [64usize, 128, 256, 512, 1024] {
        let r = 2.0 * m.flops_rate(64000.0, 128000.0, nb as f64) / 1e12;
        println!("{}", row(&[format!("{nb}"), format!("{r:.1}")], &widths));
        rates.push(Rate {
            nb,
            gflops: r * 1e3,
        });
    }
    emit_json("dgemm_model", &rates);
}

/// Times one `m x n x nb` update with kernel `kern`, returning GFLOPS.
fn time_kernel<E: Element>(
    kern: Kernel,
    m: usize,
    n: usize,
    nb: usize,
    a: MatRef<'_, E>,
    b: MatRef<'_, E>,
) -> f64 {
    let mut c = Matrix::<E>::zeros(m, n);
    // Warm-up: fault in the pack arena and caches outside the timed loop.
    let mut cv = c.view_mut();
    dgemm_with(
        kern,
        Trans::No,
        Trans::No,
        E::from_f64(-1.0),
        a,
        b,
        E::ONE,
        &mut cv,
    );
    let reps = (256 / nb).max(1);
    let t0 = Instant::now();
    for _ in 0..reps {
        let mut cv = c.view_mut();
        dgemm_with(
            kern,
            Trans::No,
            Trans::No,
            E::from_f64(-1.0),
            a,
            b,
            E::ONE,
            &mut cv,
        );
    }
    let dt = t0.elapsed().as_secs_f64() / reps as f64;
    2.0 * (m * n * nb) as f64 / dt / 1e9
}

fn measured() {
    println!("GEMM GFLOPS vs NB per kernel and element (measured on this host, m = n = 1024)");
    let (m, n) = (1024usize, 1024usize);
    let a_full = Matrix::from_fn(m, 1024, |i, j| ((i * 13 + j * 7) % 17) as f64 * 0.1 - 0.8);
    let b_full = Matrix::from_fn(1024, n, |i, j| ((i * 5 + j * 11) % 19) as f64 * 0.1 - 0.9);
    let a32 = Matrix::<f32>::from_fn(m, 1024, |i, j| ((i * 13 + j * 7) % 17) as f32 * 0.1 - 0.8);
    let b32 = Matrix::<f32>::from_fn(1024, n, |i, j| ((i * 5 + j * 11) % 19) as f32 * 0.1 - 0.9);
    let simd = Kernel::simd();
    let widths = [6usize, 10, 10, 9, 10, 10, 9];
    println!(
        "{}",
        row(
            &["NB", "f64-sc", "f64-simd", "f64-spd", "f32-sc", "f32-simd", "f32/f64"],
            &widths
        )
    );
    let mut rates = Vec::new();
    for nb in [16usize, 32, 64, 128, 256, 512, 1024] {
        let a = a_full.view().submatrix(0, 0, m, nb);
        let b = b_full.view().submatrix(0, 0, nb, n);
        let scalar_gflops = time_kernel(Kernel::scalar(), m, n, nb, a, b);
        let simd_gflops = simd.map(|k| time_kernel(k, m, n, nb, a, b));
        let speedup = simd_gflops.map(|s| s / scalar_gflops);
        let af = a32.view().submatrix(0, 0, m, nb);
        let bf = b32.view().submatrix(0, 0, nb, n);
        let scalar_f32_gflops = time_kernel(Kernel::scalar(), m, n, nb, af, bf);
        let simd_f32_gflops = simd.map(|k| time_kernel(k, m, n, nb, af, bf));
        let f32_over_f64 = match (simd_f32_gflops, simd_gflops) {
            (Some(s32), Some(s64)) => Some(s32 / s64),
            _ => None,
        };
        println!(
            "{}",
            row(
                &[
                    format!("{nb}"),
                    format!("{scalar_gflops:.2}"),
                    simd_gflops.map_or("-".to_string(), |g| format!("{g:.2}")),
                    speedup.map_or("-".to_string(), |s| format!("{s:.2}x")),
                    format!("{scalar_f32_gflops:.2}"),
                    simd_f32_gflops.map_or("-".to_string(), |g| format!("{g:.2}")),
                    f32_over_f64.map_or("-".to_string(), |s| format!("{s:.2}x")),
                ],
                &widths
            )
        );
        rates.push(KernelRate {
            nb,
            scalar_gflops,
            simd_gflops,
            speedup,
            scalar_f32_gflops,
            simd_f32_gflops,
            f32_over_f64,
        });
    }
    emit_json("dgemm_measured", &rates);
}
