//! Tracing-overhead harness: quantifies what the `hpl-trace` subsystem
//! costs, feeding the `cargo xtask bench` overhead gate.
//!
//! Four measurements:
//!
//! 1. `disabled_ns_per_call` — cost of one disabled span guard (one
//!    thread-local flag read on open, one on drop), timed over `--calls`
//!    iterations (default 10 M) with no tracer installed.
//! 2. A real benchmark run with tracing **disabled** (`disabled_wall_s`) —
//!    the production path every untraced run takes.
//! 3. The same run with tracing **enabled** (`enabled_wall_s`,
//!    `spans_per_run` over all ranks).
//! 4. `fault_guard_ns_per_call` — cost of one *disabled* fault-injection
//!    guard (`hpl_faults::on_send` with no injector armed), the branch
//!    every `Fabric::send`/`recv` takes on a fault-free run.
//! 5. `ckpt_guard_ns_per_call` — cost of the *disabled* checkpoint cadence
//!    check (`hpl_ckpt::due` with `--ckpt-every 0`), the only thing a run
//!    without checkpointing pays per panel iteration.
//! 6. The same run with checkpointing **enabled** every 2 iterations into
//!    an in-memory store: `ckpt_ns_per_run` (total Ckpt-span time over all
//!    ranks) and `ckpt_enabled_frac`, that time over the ranks' summed wall.
//!
//! `disabled_frac` — the deterministic headline metric — is the disabled
//! guard cost times the span count, over the disabled run's wall time: the
//! fraction of wall the compiled-in (but switched-off) instrumentation
//! costs. The gate requires it below 1%. `faults_disabled_frac` is the
//! analogous metric for the fault hooks: guard cost times the send+recv
//! count per run, over the same wall — also gated below 1%.
//! `ckpt_enabled_frac` bounds the cost of *running* with checkpoints on
//! (gated below 10%), while `ckpt_guard_ns_per_call` pins the disabled path
//! at a branch. The wall-clock delta between the enabled and disabled runs
//! is also printed but is noisy at this problem size; the derived fractions
//! are the stable signal.

use hpl_bench::{arg_value, emit_json, row};
use hpl_comm::Universe;
use hpl_faults::{FaultPlan, Site};
use rhpl_core::config::Schedule;
use rhpl_core::{run_hpl, HplConfig};

/// The series consumed by `cargo xtask bench` (via `--json`).
#[derive(Debug, serde::Serialize)]
struct Overhead {
    calls: u64,
    disabled_ns_per_call: f64,
    spans_per_run: u64,
    disabled_wall_s: f64,
    enabled_wall_s: f64,
    disabled_frac: f64,
    fault_guard_ns_per_call: f64,
    fault_guards_per_run: u64,
    faults_disabled_frac: f64,
    ckpt_guard_ns_per_call: f64,
    ckpt_ns_per_run: u64,
    ckpt_enabled_frac: f64,
}

/// Returns (max wall over ranks, total spans).
fn run_once(trace: bool) -> (f64, u64) {
    let mut cfg = HplConfig::new(192, 32, 2, 2);
    cfg.schedule = Schedule::SplitUpdate { frac: 0.5 };
    cfg.trace.enabled = trace;
    let results = Universe::run(cfg.ranks(), |comm| {
        let r = run_hpl(comm, &cfg).expect("nonsingular");
        (r.wall, r.trace.map_or(0, |t| t.spans.len() as u64))
    });
    let wall = results.iter().map(|r| r.0).fold(0.0f64, f64::max);
    let spans = results.iter().map(|r| r.1).sum();
    (wall, spans)
}

/// Counts fault-guard invocations (send + recv + region) across all ranks
/// for one benchmark run, by arming an *empty* fault plan: the injector's
/// per-site counters tick on every guard, world and split sub-fabrics
/// alike. Slight overcount vs the unarmed path — an armed injector routes
/// panel broadcasts through the checksummed variant, which adds a few typed
/// control messages per panel — so the derived fraction is conservative.
/// Traced run with checkpointing every 2 panel iterations into a fresh
/// in-memory store; returns (summed wall over ranks, total Ckpt-span ns).
fn run_ckpt() -> (f64, u64) {
    let mut cfg = HplConfig::new(192, 32, 2, 2);
    cfg.schedule = Schedule::SplitUpdate { frac: 0.5 };
    cfg.trace.enabled = true;
    cfg.ckpt = rhpl_core::CkptOpts {
        every: 2,
        store: Some(hpl_ckpt::CkptStore::mem(cfg.ranks())),
        resume: false,
    };
    let results = Universe::run(cfg.ranks(), |comm| {
        let r = run_hpl(comm, &cfg).expect("nonsingular");
        let ckpt_ns: u64 = r.trace.as_ref().map_or(0, |t| {
            t.spans
                .iter()
                .filter(|s| s.phase == hpl_trace::Phase::Ckpt)
                .map(|s| s.dur_ns)
                .sum()
        });
        (r.wall, ckpt_ns)
    });
    let wall_sum = results.iter().map(|r| r.0).sum();
    let ckpt_ns = results.iter().map(|r| r.1).sum();
    (wall_sum, ckpt_ns)
}

fn count_fault_guards() -> u64 {
    let mut cfg = HplConfig::new(192, 32, 2, 2);
    cfg.schedule = Schedule::SplitUpdate { frac: 0.5 };
    let run = Universe::run_with_faults(cfg.ranks(), FaultPlan::new(0), |comm| {
        run_hpl(comm, &cfg).expect("nonsingular");
    });
    let inj = &run.injector;
    (0..cfg.ranks())
        .flat_map(|r| {
            [Site::Send, Site::Recv, Site::Region]
                .into_iter()
                .map(move |s| inj.site_count(r, s))
        })
        .sum()
}

fn main() {
    let calls: u64 = arg_value("--calls").unwrap_or(10_000_000);

    // 1. Disabled guard cost. No tracer is installed on this thread, so
    // every guard takes the fast path.
    let t0 = std::time::Instant::now();
    for _ in 0..calls {
        let g = hpl_trace::span(hpl_trace::Phase::Update);
        std::hint::black_box(&g);
    }
    let disabled_ns_per_call = t0.elapsed().as_nanos() as f64 / calls as f64;

    // 4. Disabled fault-guard cost: the `None`-injector branch every
    // send/recv takes when no fault plan is armed.
    let no_injector = None;
    let t1 = std::time::Instant::now();
    for _ in 0..calls {
        let a = hpl_faults::on_send(&no_injector);
        std::hint::black_box(&a);
    }
    let fault_guard_ns_per_call = t1.elapsed().as_nanos() as f64 / calls as f64;

    // 5. Disabled checkpoint guard: the cadence check every panel iteration
    // performs when `--ckpt-every` is 0.
    let t2 = std::time::Instant::now();
    for i in 0..calls {
        let d = hpl_ckpt::due(0, i as usize);
        std::hint::black_box(d);
    }
    let ckpt_guard_ns_per_call = t2.elapsed().as_nanos() as f64 / calls as f64;

    // 2./3. Paired runs. Warm up once so page-cache/allocator effects hit
    // neither side.
    run_once(false);
    let (disabled_wall_s, _) = run_once(false);
    let (enabled_wall_s, spans_per_run) = run_once(true);
    let fault_guards_per_run = count_fault_guards();

    // 6. Checkpointing enabled: Ckpt-span time as a fraction of the ranks'
    // summed wall (both sides of the ratio come from the same run, so the
    // metric is stable against machine speed).
    let (ckpt_wall_sum_s, ckpt_ns_per_run) = run_ckpt();

    let disabled_frac = disabled_ns_per_call * spans_per_run as f64 / (disabled_wall_s * 1e9);
    let faults_disabled_frac =
        fault_guard_ns_per_call * fault_guards_per_run as f64 / (disabled_wall_s * 1e9);
    let ckpt_enabled_frac = ckpt_ns_per_run as f64 / (ckpt_wall_sum_s * 1e9);
    let o = Overhead {
        calls,
        disabled_ns_per_call,
        spans_per_run,
        disabled_wall_s,
        enabled_wall_s,
        disabled_frac,
        fault_guard_ns_per_call,
        fault_guards_per_run,
        faults_disabled_frac,
        ckpt_guard_ns_per_call,
        ckpt_ns_per_run,
        ckpt_enabled_frac,
    };

    println!("trace overhead: N=192 NB=32 2x2 split-update");
    let widths = [26usize, 14];
    println!(
        "{}",
        row(
            &["disabled ns/call", &format!("{disabled_ns_per_call:.2}")],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &["spans per traced run", &format!("{spans_per_run}")],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &["disabled wall (s)", &format!("{disabled_wall_s:.4}")],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &["enabled wall (s)", &format!("{enabled_wall_s:.4}")],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &["disabled overhead frac", &format!("{disabled_frac:.6}")],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "fault guard ns/call",
                &format!("{fault_guard_ns_per_call:.2}")
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &["fault guards per run", &format!("{fault_guards_per_run}")],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "faults disabled frac",
                &format!("{faults_disabled_frac:.6}")
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "ckpt guard ns/call",
                &format!("{ckpt_guard_ns_per_call:.2}")
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(&["ckpt ns per run", &format!("{ckpt_ns_per_run}")], &widths)
    );
    println!(
        "{}",
        row(
            &["ckpt enabled frac", &format!("{ckpt_enabled_frac:.6}")],
            &widths
        )
    );
    emit_json("trace_overhead", &o);
}
