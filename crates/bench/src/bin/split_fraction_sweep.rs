//! §III.C in-text anchor — the split-fraction tuning parameter.
//!
//! The paper leaves the left/right split as a user tunable and reports that
//! a 50-50 split is optimal on a single Frontier node. This binary sweeps
//! the fraction through the calibrated model (default) and, with
//! `--functional`, through real scaled-down runs, confirming the optimum's
//! location and the flat-top shape around it.

use hpl_bench::{arg_value, emit_json, has_flag, row};
use hpl_comm::Universe;
use hpl_sim::{NodeModel, Pipeline, RunParams, Simulator};
use rhpl_core::config::Schedule;
use rhpl_core::{run_hpl, HplConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    frac: f64,
    tflops: f64,
}

fn main() {
    let fracs = [0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875];
    if has_flag("--functional") {
        functional(&fracs);
    } else {
        model(&fracs);
    }
}

fn model(fracs: &[f64]) {
    println!("Split-fraction sweep (model), paper single-node configuration");
    println!("paper: \"splitting the local A matrix in half ... works optimally\"\n");
    let node = NodeModel::frontier();
    let widths = [8usize, 10];
    println!("{}", row(&["frac", "TFLOPS"], &widths));
    let mut pts = Vec::new();
    let mut best = (0.0, 0.0);
    for &frac in fracs {
        let mut params = RunParams::paper_single_node();
        params.split_frac = frac;
        let pipeline = if frac == 0.0 {
            Pipeline::LookAhead
        } else {
            Pipeline::SplitUpdate
        };
        let r = Simulator::new(node, params).run(pipeline);
        println!(
            "{}",
            row(&[format!("{frac:.3}"), format!("{:.1}", r.tflops)], &widths)
        );
        if r.tflops > best.1 {
            best = (frac, r.tflops);
        }
        pts.push(Point {
            frac,
            tflops: r.tflops,
        });
    }
    println!("\noptimum at frac = {:.3} ({:.1} TF)", best.0, best.1);
    emit_json("split_sweep_model", &pts);
}

fn functional(fracs: &[f64]) {
    let n: usize = arg_value("--n").unwrap_or(512);
    let nb: usize = arg_value("--nb").unwrap_or(32);
    println!("Split-fraction sweep (functional), N={n} NB={nb} 2x2");
    let widths = [8usize, 12];
    println!("{}", row(&["frac", "GFLOPS"], &widths));
    let mut pts = Vec::new();
    for &frac in fracs {
        let mut cfg = HplConfig::new(n, nb, 2, 2);
        cfg.schedule = if frac == 0.0 {
            Schedule::LookAhead
        } else {
            Schedule::SplitUpdate { frac }
        };
        let results = Universe::run(cfg.ranks(), |comm| {
            run_hpl(comm, &cfg).expect("nonsingular")
        });
        let g = results[0].gflops;
        println!(
            "{}",
            row(&[format!("{frac:.3}"), format!("{g:.2}")], &widths)
        );
        pts.push(Point {
            frac,
            tflops: g / 1e3,
        });
    }
    emit_json("split_sweep_functional", &pts);
}
