//! Fig 8 — weak scaling of the HPL score to multiple nodes.
//!
//! Default: the calibrated Frontier model over 1..128 nodes (the paper's
//! sweep: HBM-filling N, square-or-2:1 grids, node-local 1x8 once Q >= 8),
//! reporting measured vs ideal TFLOPS. Paper anchors: 153 TF single node,
//! 17.75 PF on 128 nodes, > 90% efficiency.
//!
//! Pass `--functional` to run the real distributed benchmark over 1..8
//! rank-"nodes" (threads) with a weak-scaled problem, demonstrating the
//! same shape at laptop scale.

use hpl_bench::{arg_value, emit_json, has_flag, row};
use hpl_comm::Universe;
use hpl_sim::{weak_scaling, NodeModel};
use rhpl_core::config::Schedule;
use rhpl_core::{run_hpl, HplConfig};
use serde::Serialize;

fn main() {
    if has_flag("--functional") {
        functional();
    } else {
        model();
    }
}

fn model() {
    let node = NodeModel::frontier();
    let pts = weak_scaling(&node, &[1, 2, 4, 8, 16, 32, 64, 128]);
    println!("Fig 8 (model): weak scaling on Crusher nodes");
    println!("paper anchors: 153 TF @ 1 node -> 17.75 PF @ 128 nodes, > 90% efficiency\n");
    let widths = [6usize, 10, 8, 12, 12, 8];
    println!(
        "{}",
        row(&["nodes", "N", "grid", "TFLOPS", "ideal", "eff"], &widths)
    );
    for p in &pts {
        println!(
            "{}",
            row(
                &[
                    format!("{}", p.nodes),
                    format!("{}", p.n),
                    format!("{}x{}", p.p, p.q),
                    format!("{:.0}", p.tflops),
                    format!("{:.0}", p.ideal_tflops),
                    format!("{:.3}", p.efficiency),
                ],
                &widths
            )
        );
    }
    emit_json("fig8_model", &pts);
}

#[derive(Serialize)]
struct FuncPoint {
    ranks: usize,
    n: usize,
    gflops: f64,
    efficiency: f64,
}

fn functional() {
    let nb: usize = arg_value("--nb").unwrap_or(32);
    let base_n: usize = arg_value("--base-n").unwrap_or(256);
    println!("Fig 8 (functional): weak scaling over rank counts (threads as nodes)");
    let cores = std::thread::available_parallelism()
        .map(|x| x.get())
        .unwrap_or(1);
    println!("host parallelism: {cores} hardware thread(s)");
    if cores < 8 {
        println!("NOTE: rank-threads beyond the core count time-slice, so measured");
        println!("efficiency reflects host serialization; the network-driven Fig 8");
        println!("shape is carried by the calibrated model (default mode).");
    }
    let mut pts: Vec<FuncPoint> = Vec::new();
    for (ranks, p, q) in [(1usize, 1usize, 1usize), (2, 2, 1), (4, 2, 2), (8, 4, 2)] {
        // Weak scaling: memory per rank constant => N grows by sqrt(ranks).
        let n = ((base_n as f64) * (ranks as f64).sqrt()) as usize;
        let n = n - n % nb;
        let mut cfg = HplConfig::new(n, nb, p, q);
        cfg.schedule = Schedule::SplitUpdate { frac: 0.5 };
        let results = Universe::run(cfg.ranks(), |comm| {
            run_hpl(comm, &cfg).expect("nonsingular")
        });
        let gflops = results[0].gflops;
        let eff = if let Some(first) = pts.first() {
            gflops / (first.gflops * ranks as f64)
        } else {
            1.0
        };
        println!("ranks {ranks:2} ({p}x{q}), N={n:5}: {gflops:8.2} GFLOPS, efficiency {eff:.3}");
        pts.push(FuncPoint {
            ranks,
            n,
            gflops,
            efficiency: eff,
        });
    }
    emit_json("fig8_functional", &pts);
}
