//! Fig 5 — multi-threading performance of the FACT phase.
//!
//! Measures the GFLOPS of the panel factorization of an `M x NB` matrix on
//! a single process (no MPI pivot exchange time, as in the paper's test)
//! for a range of `M` (multiples of `NB`) and thread counts, using the
//! recursive right-looking factorization with two subdivisions and base
//! block 16 — the paper's exact configuration, scaled down (`NB = 128` by
//! default instead of 512, and thread counts up to the host's cores
//! instead of 64; pass `--nb`/`--threads-max` to change).
//!
//! Pass `--model` to print the calibrated 64-core Frontier model surface at
//! the paper's `NB = 512` instead of measuring.

use std::time::Instant;

use hpl_bench::{arg_value, emit_json, has_flag, row};
use hpl_comm::Universe;
use hpl_sim::FactModel;
use rhpl_core::fact::{panel_factor, FactInput};
use rhpl_core::{FactOpts, FactVariant};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    m: usize,
    threads: usize,
    gflops: f64,
}

fn measure(nb: usize, m: usize, threads: usize, reps: usize) -> f64 {
    use hpl_blas::mat::Matrix;
    let flops = m as f64 * (nb * nb) as f64 - (nb * nb * nb) as f64 / 3.0;
    let out = Universe::run(1, |comm| {
        let pool = hpl_threads::Pool::new(threads);
        let mut best = f64::INFINITY;
        for rep in 0..reps {
            // Fresh random panel per repetition.
            let gen = rhpl_core::MatGen::new(7 + rep as u64, m);
            let mut panel = Matrix::from_fn(m, nb, |i, j| gen.entry(i, j));
            let inp = FactInput {
                col_comm: &comm,
                rows: rhpl_core::dist::Axis {
                    n: m,
                    nb,
                    iproc: 0,
                    nprocs: 1,
                },
                k0: 0,
                jb: nb,
                lb: 0,
                is_curr: true,
                pool: &pool,
                opts: FactOpts {
                    variant: FactVariant::Right,
                    ndiv: 2,
                    nbmin: 16,
                    threads,
                },
            };
            let t0 = Instant::now();
            let mut v = panel.view_mut();
            panel_factor(&inp, &mut v).expect("random panel is nonsingular");
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    });
    flops / out[0] / 1e9
}

fn main() {
    if has_flag("--model") {
        model_table();
        return;
    }
    let nb: usize = arg_value("--nb").unwrap_or(128);
    let tmax: usize = arg_value("--threads-max").unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|x| x.get())
            .unwrap_or(4)
    });
    let reps: usize = arg_value("--reps").unwrap_or(3);
    let threads: Vec<usize> = [1usize, 2, 4, 8, 16, 32, 64]
        .into_iter()
        .filter(|&t| t <= tmax)
        .collect();
    let ms: Vec<usize> = [2, 4, 8, 16, 32, 64].iter().map(|&k| k * nb).collect();

    println!("Fig 5 (measured): FACT GFLOPS of an M x {nb} panel, recursive right-looking");
    println!("(paper: NB = 512, 1..64 cores of a Frontier EPYC; here scaled to this host)");
    let cores = std::thread::available_parallelism()
        .map(|x| x.get())
        .unwrap_or(1);
    println!("host parallelism: {cores} hardware thread(s)");
    if cores == 1 {
        println!("NOTE: on a single-core host, threads time-slice — measured numbers can");
        println!("only show the orchestration overhead; the Fig 5 scaling *shape* is");
        println!("carried by the calibrated model (--model).");
    }
    let mut widths = vec![8usize];
    widths.extend(std::iter::repeat_n(9, threads.len()));
    let mut header = vec!["M".to_string()];
    header.extend(threads.iter().map(|t| format!("T={t}")));
    println!("{}", row(&header, &widths));
    let mut points = Vec::new();
    for &m in &ms {
        let mut cells = vec![format!("{m}")];
        for &t in &threads {
            let g = measure(nb, m, t, reps);
            points.push(Point {
                m,
                threads: t,
                gflops: g,
            });
            cells.push(format!("{g:.2}"));
        }
        println!("{}", row(&cells, &widths));
    }
    emit_json("fig5_measured", &points);
}

fn model_table() {
    let f = FactModel::default();
    let nb = 512usize;
    println!("Fig 5 (model): FACT GFLOPS, NB = 512, Frontier 64-core EPYC model");
    let threads = [1usize, 2, 4, 8, 16, 32, 64];
    let ms: Vec<usize> = [1usize, 2, 4, 8, 16, 32, 64, 128]
        .iter()
        .map(|&k| k * nb)
        .collect();
    let mut widths = vec![8usize];
    widths.extend(std::iter::repeat_n(9, threads.len()));
    let mut header = vec!["M".to_string()];
    header.extend(threads.iter().map(|t| format!("T={t}")));
    println!("{}", row(&header, &widths));
    let mut points = Vec::new();
    for &m in &ms {
        let mut cells = vec![format!("{m}")];
        for &t in &threads {
            let g = f.gflops(t, m as f64);
            points.push(Point {
                m,
                threads: t,
                gflops: g,
            });
            cells.push(format!("{g:.1}"));
        }
        println!("{}", row(&cells, &widths));
    }
    emit_json("fig5_model", &points);
}
