//! Ablation — the value of each overlap mechanism.
//!
//! Compares the three pipelines (no overlap, look-ahead, look-ahead +
//! split update) through the calibrated model at paper scale (default) and
//! through real scaled-down runs (`--functional`). The DESIGN.md calls
//! this out as the design-choice ablation for §III.C.

use hpl_bench::{arg_value, emit_json, has_flag, row};
use hpl_comm::Universe;
use hpl_sim::{NodeModel, Pipeline, RunParams, Simulator};
use rhpl_core::config::Schedule;
use rhpl_core::{run_hpl, HplConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    schedule: String,
    tflops: f64,
    vs_baseline: f64,
}

fn main() {
    if has_flag("--functional") {
        functional();
    } else {
        model();
    }
}

fn model() {
    println!("Overlap ablation (model), paper single-node configuration\n");
    let node = NodeModel::frontier();
    let params = RunParams::paper_single_node();
    let widths = [22usize, 10, 12, 14];
    println!(
        "{}",
        row(&["schedule", "TFLOPS", "vs serial", "hidden time"], &widths)
    );
    let mut out = Vec::new();
    let mut base = 0.0;
    for (name, pl) in [
        ("no overlap", Pipeline::NoOverlap),
        ("look-ahead (Fig 3)", Pipeline::LookAhead),
        ("split update (Fig 6)", Pipeline::SplitUpdate),
    ] {
        let r = Simulator::new(node, params).run(pl);
        if base == 0.0 {
            base = r.tflops;
        }
        println!(
            "{}",
            row(
                &[
                    name.to_string(),
                    format!("{:.1}", r.tflops),
                    format!("{:+.1}%", (r.tflops / base - 1.0) * 100.0),
                    format!("{:.2}", r.hidden_time_fraction),
                ],
                &widths
            )
        );
        out.push(Row {
            schedule: name.to_string(),
            tflops: r.tflops,
            vs_baseline: r.tflops / base,
        });
    }
    emit_json("ablation_model", &out);
}

fn functional() {
    let n: usize = arg_value("--n").unwrap_or(640);
    let nb: usize = arg_value("--nb").unwrap_or(32);
    println!("Overlap ablation (functional), N={n} NB={nb} 2x2, FACT threads 2\n");
    let widths = [22usize, 12];
    println!("{}", row(&["schedule", "GFLOPS"], &widths));
    let mut out = Vec::new();
    for (name, schedule) in [
        ("simple", Schedule::Simple),
        ("look-ahead", Schedule::LookAhead),
        ("split update 50%", Schedule::SplitUpdate { frac: 0.5 }),
    ] {
        let mut cfg = HplConfig::new(n, nb, 2, 2);
        cfg.schedule = schedule;
        cfg.fact.threads = 2;
        let results = Universe::run(cfg.ranks(), |comm| {
            run_hpl(comm, &cfg).expect("nonsingular")
        });
        println!(
            "{}",
            row(
                &[name.to_string(), format!("{:.2}", results[0].gflops)],
                &widths
            )
        );
        out.push(Row {
            schedule: name.to_string(),
            tflops: results[0].gflops / 1e3,
            vs_baseline: 0.0,
        });
    }
    println!("\n(note: on threads the schedules execute the same arithmetic, so the");
    println!("functional ablation measures orchestration overheads, not the GPU-side");
    println!("overlap wins — those are what the model quantifies)");
    emit_json("ablation_functional", &out);
}
