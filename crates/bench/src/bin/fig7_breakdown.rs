//! Fig 7 — per-iteration timing breakdown of a single-node run.
//!
//! Default: the calibrated Frontier model at the paper's configuration
//! (`N = 256000`, `NB = 512`, `P x Q = 4 x 2`, 50-50 split), printing the
//! same five series the paper plots — total iteration time, GPU active
//! time, and the stacked FACT / MPI / transfer components — plus the
//! summary statistics the paper quotes (regime boundary, overall score,
//! hidden-communication fractions).
//!
//! Pass `--functional` to instead *execute* the real distributed benchmark
//! at a scaled-down size (`--n`, `--nb`, `--p`, `--q`) and print the
//! measured per-iteration phases from the diagonal-owner rank.

use hpl_bench::{arg_value, emit_json, has_flag, row};
use hpl_comm::Universe;
use hpl_sim::{NodeModel, Pipeline, RunParams, Simulator};
use rhpl_core::config::Schedule;
use rhpl_core::{run_hpl, HplConfig};

fn main() {
    if has_flag("--functional") {
        functional();
    } else {
        model();
    }
}

fn model() {
    let sim = Simulator::new(NodeModel::frontier(), RunParams::paper_single_node());
    let r = sim.run(Pipeline::SplitUpdate);
    println!("Fig 7 (model): per-iteration breakdown, N=256000 NB=512 4x2, split 50%");
    println!("paper anchors: 153 TFLOPS overall, regime change near iteration 250,");
    println!("iteration time == GPU time in the first regime\n");
    let widths = [6usize, 10, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &["iter", "total ms", "gpu ms", "fact ms", "mpi ms", "xfer ms"],
            &widths
        )
    );
    for it in (0..r.iters.len()).step_by(25).chain([r.iters.len() - 1]) {
        let x = &r.iters[it];
        println!(
            "{}",
            row(
                &[
                    format!("{}", x.iter),
                    format!("{:.2}", x.time * 1e3),
                    format!("{:.2}", x.gpu_active * 1e3),
                    format!("{:.2}", x.fact * 1e3),
                    format!("{:.2}", x.mpi * 1e3),
                    format!("{:.2}", x.transfer * 1e3),
                ],
                &widths
            )
        );
    }
    let boundary = r.iters.iter().position(|x| x.time > x.gpu_active * 1.02);
    println!(
        "\nscore:                  {:.1} TFLOPS (paper: 153)",
        r.tflops
    );
    println!(
        "regime boundary:        iteration {:?} of {} (paper: ~250 of 500)",
        boundary,
        r.iters.len()
    );
    println!(
        "hidden-iteration frac:  {:.2} (paper: ~0.5)",
        r.hidden_iter_fraction
    );
    println!(
        "hidden-time frac:       {:.2} (paper: ~0.75)",
        r.hidden_time_fraction
    );
    emit_json("fig7_model", &r);
}

fn functional() {
    let n: usize = arg_value("--n").unwrap_or(768);
    let nb: usize = arg_value("--nb").unwrap_or(32);
    let p: usize = arg_value("--p").unwrap_or(2);
    let q: usize = arg_value("--q").unwrap_or(2);
    let mut cfg = HplConfig::new(n, nb, p, q);
    cfg.schedule = Schedule::SplitUpdate { frac: 0.5 };
    cfg.fact.threads = 2;
    println!("Fig 7 (functional): measured per-iteration phases, N={n} NB={nb} {p}x{q}");
    let results = Universe::run(cfg.ranks(), |comm| {
        run_hpl(comm, &cfg).expect("nonsingular")
    });
    // Merge: per-phase maximum across ranks — the critical-path view. (With
    // look-ahead, the FACT of panel i+1 runs during iteration i on the next
    // panel's column, so no single rank's record holds every phase.)
    let mut merged = Vec::new();
    for it in 0..cfg.iterations() {
        let mut rec = rhpl_core::IterTiming {
            iter: it,
            ..Default::default()
        };
        for r in &results {
            let t = r.timings[it];
            rec.total = rec.total.max(t.total);
            rec.fact = rec.fact.max(t.fact);
            rec.comm = rec.comm.max(t.comm);
            rec.transfer = rec.transfer.max(t.transfer);
            rec.update = rec.update.max(t.update);
        }
        merged.push(rec);
    }
    let widths = [6usize, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &["iter", "total ms", "fact ms", "comm ms", "xfer ms"],
            &widths
        )
    );
    for t in &merged {
        println!(
            "{}",
            row(
                &[
                    format!("{}", t.iter),
                    format!("{:.3}", t.total * 1e3),
                    format!("{:.3}", t.fact * 1e3),
                    format!("{:.3}", t.comm * 1e3),
                    format!("{:.3}", t.transfer * 1e3),
                ],
                &widths
            )
        );
    }
    println!(
        "\nwall: {:.3} s, {:.2} GFLOPS",
        results[0].wall, results[0].gflops
    );
    emit_json(
        "fig7_functional",
        &merged
            .iter()
            .map(|t| (t.iter, t.total, t.fact, t.comm, t.transfer))
            .collect::<Vec<_>>(),
    );
}
