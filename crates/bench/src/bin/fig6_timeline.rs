//! Fig 6 — execution timeline of one iteration under the split-update
//! schedule: renders the modeled Gantt chart showing RS1 hidden under
//! UPDATE2 (together with the host chain) and the next iteration's RS2
//! communication hidden under UPDATE1 — no exposed communication while the
//! left section lasts.

use hpl_bench::{arg_value, emit_json};
use hpl_sim::{iteration_spans, render, NodeModel, Pipeline, RunParams, Simulator};

fn main() {
    let it: usize = arg_value("--iter").unwrap_or(50);
    let sim = Simulator::new(NodeModel::frontier(), RunParams::paper_single_node());
    let spans = iteration_spans(&sim, it, Pipeline::SplitUpdate);
    println!("Fig 6 (model): split-update iteration timeline, iteration {it} of the");
    println!("paper single-node run (N=256000, NB=512, 4x2, 50-50 split).\n");
    print!("{}", render(&spans, 100));
    let rec = sim.iter_record(it, Pipeline::SplitUpdate);
    let base = sim.iter_record(it, Pipeline::LookAhead);
    println!(
        "\niteration: {:.2} ms total vs {:.2} ms with look-ahead alone ({:.1}% saved)",
        rec.time * 1e3,
        base.time * 1e3,
        (1.0 - rec.time / base.time) * 100.0
    );
    println!(
        "GPU-active {:.2} ms; fully hidden: {}",
        rec.gpu_active * 1e3,
        rec.time <= rec.gpu_active * 1.02
    );
    emit_json(
        "fig6_spans",
        &spans
            .iter()
            .map(|s| (s.row, s.label, s.start, s.len))
            .collect::<Vec<_>>(),
    );
}
