//! Discrete-event cross-check of Figs 3/6/7: runs the full benchmark as a
//! task graph on {GPU, CPU, XFER, NET} resources and reports the emergent
//! score next to the closed-form model, plus a rendered multi-iteration
//! Gantt window — the schedule the paper draws, derived from dependencies
//! rather than composed by formula.
//!
//! `--pipeline serial|lookahead|split` (default split), `--window N`
//! (iterations to render, default 3), `--start I` (first rendered
//! iteration, default 50).

use hpl_bench::{arg_value, emit_json, row};
use hpl_sim::{simulate_des, NodeModel, Pipeline, RunParams, Simulator, Span};

fn main() {
    let pipeline = match arg_value::<String>("--pipeline").as_deref() {
        Some("serial") => Pipeline::NoOverlap,
        Some("lookahead") => Pipeline::LookAhead,
        _ => Pipeline::SplitUpdate,
    };
    let start: usize = arg_value("--start").unwrap_or(50);
    let window: usize = arg_value("--window").unwrap_or(3);

    let sim = Simulator::new(NodeModel::frontier(), RunParams::paper_single_node());
    let analytic = sim.run(pipeline);
    let des = simulate_des(&sim, pipeline);
    println!("Discrete-event vs closed-form model, paper single-node run, {pipeline:?}\n");
    let widths = [22usize, 12, 12];
    println!("{}", row(&["", "analytic", "DES"], &widths));
    println!(
        "{}",
        row(
            &[
                "score (TFLOPS)".to_string(),
                format!("{:.1}", analytic.tflops),
                format!("{:.1}", des.tflops),
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "total time (s)".to_string(),
                format!("{:.1}", analytic.total_time),
                format!("{:.1}", des.trace.makespan),
            ],
            &widths
        )
    );
    println!(
        "\nDES resource utilization: GPU {:.1}%, CPU {:.1}%, XFER {:.1}%, NET {:.1}%",
        des.trace.utilization(hpl_sim::ResourceId(0)) * 100.0,
        des.trace.utilization(hpl_sim::ResourceId(1)) * 100.0,
        des.trace.utilization(hpl_sim::ResourceId(2)) * 100.0,
        des.trace.utilization(hpl_sim::ResourceId(3)) * 100.0,
    );

    // Render a window of the emergent schedule.
    let t0 = if start == 0 {
        0.0
    } else {
        des.iter_done[start - 1]
    };
    let t1 = des.iter_done[(start + window - 1).min(des.iter_done.len() - 1)];
    let rows = ["GPU", "CPU", "XFER", "MPI"];
    let spans: Vec<Span> = des
        .trace
        .spans
        .iter()
        .filter(|s| s.end > t0 && s.start < t1)
        .map(|s| Span {
            row: rows[s.resource.0.min(3)],
            label: "", // labels listed separately below
            start: (s.start.max(t0) - t0),
            len: s.end.min(t1) - s.start.max(t0),
        })
        .collect();
    println!(
        "\nemergent schedule, iterations {start}..{} :",
        start + window
    );
    print!("{}", hpl_sim::render(&spans, 100));
    // Task inventory of the window, per resource.
    for (ri, name) in rows.iter().enumerate() {
        let labels: Vec<&str> = des
            .trace
            .spans
            .iter()
            .filter(|s| s.resource.0 == ri && s.end > t0 && s.start < t1)
            .map(|s| s.label.as_str())
            .collect();
        println!("{name:>5}: {}", labels.join(" "));
    }
    let head: Vec<f64> = des.iter_done[..(start + window).min(des.iter_done.len())].to_vec();
    emit_json("des_trace", &head);
}
