//! # hpl-bench
//!
//! The benchmark harness of the rhpl workspace: one binary per figure of
//! the paper (see DESIGN.md's experiment index) plus Criterion
//! micro-benchmarks for the kernels. Each binary prints a human-readable
//! table; pass `--json` to also emit the series as JSON on stdout for
//! post-processing.

// Lint policy: indexed loops are used deliberately where they mirror the
// reference BLAS/HPL loop structure, and several kernels take the full
// argument list their BLAS counterparts do.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::too_many_arguments)]

use std::fmt::Display;

/// Tiny argv helper: returns true if `flag` is present.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Tiny argv helper: value following `key`, parsed.
pub fn arg_value<T: std::str::FromStr>(key: &str) -> Option<T> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Prints a named JSON document when `--json` was passed.
pub fn emit_json<T: serde::Serialize>(name: &str, value: &T) {
    if has_flag("--json") {
        println!(
            "JSON {name} {}",
            serde_json::to_string(value).expect("serializable bench output")
        );
    }
}

/// Renders one formatted table row (right-aligned cells).
pub fn row<D: Display>(cells: &[D], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_formats_right_aligned() {
        let r = row(&["a", "bb"], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
