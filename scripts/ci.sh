#!/usr/bin/env bash
# Full local CI gate. Mirrors .github/workflows/ci.yml exactly — same
# commands, same order, one section per hosted job — so a green local run
# predicts a green hosted run. Everything is offline (all deps are vendored
# shims).
set -euo pipefail
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

echo "== [check] cargo xtask check"
cargo xtask check
cargo xtask check --json > /dev/null

echo "== [lint] cargo fmt --check"
cargo fmt --check

echo "== [lint] cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== [test] cargo build --release"
cargo build --release

echo "== [test] cargo test -q"
cargo test -q

echo "== [kernel-matrix] cargo test -q under each pinned DGEMM kernel"
RHPL_KERNEL=scalar cargo test -q
RHPL_KERNEL=simd cargo test -q

echo "== [mxp-matrix] HPL-MxP suites under each pinned DGEMM kernel"
RHPL_KERNEL=scalar cargo test -q -p hpl-mxp -p hpl-blas -p rhpl-cli
RHPL_KERNEL=simd cargo test -q -p hpl-mxp -p hpl-blas -p rhpl-cli

echo "== [mxp-matrix] process-per-rank --mxp launch over localhost TCP"
cargo build --release -p rhpl-cli
./target/release/rhpl --sample > target/HPL-mxp.dat
RHPL_KERNEL=simd ./target/release/rhpl launch target/HPL-mxp.dat --ranks 4 --transport tcp --mxp

echo "== [mailbox-matrix] cargo test -q under each mailbox implementation"
RHPL_MAILBOX=lockfree cargo test -q
RHPL_MAILBOX=mutex cargo test -q

echo "== [race-check] threaded FACT with the aliasing ledger armed"
cargo test -q --release -p hpl-threads --features hpl-threads/race-check
cargo test -q --release -p rhpl-core --features hpl-threads/race-check

echo "== [bench] cargo xtask bench"
cargo xtask bench

echo "== [bench] cargo xtask bench --self-test"
cargo xtask bench --self-test

echo "== [faults] cargo xtask faults"
cargo xtask faults

echo "== [faults] cargo xtask faults --self-test"
cargo xtask faults --self-test

echo "== [recovery] cargo xtask faults --recovery"
cargo xtask faults --recovery

echo "== [transport-matrix] cargo test -q under each byte-moving transport"
RHPL_TRANSPORT=shm cargo test -q
RHPL_TRANSPORT=tcp cargo test -q

echo "== [transport-matrix] cargo xtask faults --kill"
cargo xtask faults --kill

echo "== [miri] cargo +nightly miri test -p hpl-ckpt -p hpl-faults"
if cargo +nightly miri --version >/dev/null 2>&1; then
  MIRIFLAGS=-Zmiri-disable-isolation cargo +nightly miri test -p hpl-ckpt -p hpl-faults
else
  echo "miri: nightly toolchain with miri is not installed; skipping (hosted CI runs it)"
fi

echo "== [loom] model-check both mailbox implementations' send/recv/poison protocol"
cargo test -q -p loom
cargo test -q -p hpl-comm --test loom_mailbox

echo "ci.sh: all gates green"
