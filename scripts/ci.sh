#!/usr/bin/env bash
# Full local CI gate: static safety analysis, release build, test suite.
# Mirrors what a hosted CI job would run; everything is offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo xtask check"
cargo xtask check

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q
