//! Fig 4 rendering: the round-robin assignment of NB x NB panel tiles to
//! FACT threads, plus the SIII.B time-shared core bindings that decide how
//! many threads each rank gets.
//!
//! ```text
//! cargo run -p hpl-examples --bin fact_tiling_map [M_TILES] [THREADS]
//! ```

use hpl_threads::{round_robin_tiles, time_shared_bindings};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mtiles: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let threads: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let nb = 512usize;
    let m = mtiles * nb;

    println!("FACT tile assignment (paper Fig 4): {m} x {nb} panel, {threads} threads");
    println!("tile = {nb} rows; tile t belongs to thread t % T\n");
    for tid in 0..threads {
        let tiles = round_robin_tiles(m, nb, threads, tid);
        let cells: Vec<String> = (0..mtiles)
            .map(|t| {
                if tiles.contains(&t) {
                    format!("[T{tid}]")
                } else {
                    "    ".into()
                }
            })
            .collect();
        println!("  thread {tid}: {}", cells.join(" "));
    }
    println!("\n(tile 0 — holding the triangular factor and all pivot source rows —");
    println!("is always owned by the main thread, which also talks to MPI)\n");

    println!("time-shared bindings on a Frontier socket (64 cores, 2x4 local grid):");
    let b = time_shared_bindings(2, 4, 64).expect("valid grid");
    for x in b.iter().take(4) {
        println!(
            "  rank {} (row {}, col {}): root core {}, +{} pool cores -> T = {}",
            x.rank,
            x.row,
            x.col,
            x.root_core,
            x.extra_cores.len(),
            x.threads()
        );
    }
    println!("  ... (ranks in the same process row share the same pool cores)");
}
