//! Quickstart: run the full HPL benchmark on a 2x2 in-process grid with
//! every paper optimization enabled, verify the solution against HPL's
//! scaled-residual criterion, and print the score.
//!
//! ```text
//! cargo run --release -p hpl-examples --bin quickstart [N] [NB]
//! ```

use hpl_comm::{BcastAlgo, Grid, GridOrder, Universe};
use rhpl_core::config::Schedule;
use rhpl_core::{run_hpl, verify, HplConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(512);
    let nb: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(32);
    let (p, q) = (2usize, 2usize);

    let mut cfg = HplConfig::new(n, nb, p, q);
    cfg.bcast = BcastAlgo::OneRingM; // rocHPL's default broadcast
    cfg.schedule = Schedule::SplitUpdate { frac: 0.5 }; // Fig 6 pipeline
    cfg.fact.threads = 2; // SIII.A multi-threaded FACT

    println!("rhpl quickstart: N={n}, NB={nb}, grid {p}x{q}, split update 50%,");
    println!(
        "recursive right-looking FACT ({} threads/rank)\n",
        cfg.fact.threads
    );

    // One OS thread per rank, exactly like `mpirun -np 4`.
    let results = Universe::run(cfg.ranks(), |comm| {
        run_hpl(comm, &cfg).expect("nonsingular")
    });

    let wall = results[0].wall;
    println!(
        "solved in {:.3} s  ->  {:.2} GFLOPS",
        wall, results[0].gflops
    );

    // HPL's acceptance test: scaled residual below 16.
    let x = results[0].x.clone();
    let res = Universe::run(cfg.ranks(), |comm| {
        let grid = Grid::new(comm, p, q, GridOrder::ColumnMajor);
        verify(&grid, n, nb, cfg.seed, &x).expect("verification collectives")
    });
    let r = res[0];
    println!(
        "||Ax-b||_inf = {:.3e}, scaled residual = {:.4} (< {} required)",
        r.err_inf,
        r.scaled,
        rhpl_core::Residuals::THRESHOLD
    );
    println!(
        "verification: {}",
        if r.passed() { "PASSED" } else { "FAILED" }
    );
    assert!(r.passed());
}
