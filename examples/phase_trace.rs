//! Fig 2 narration: runs one HPL iteration on a 2x2 grid and reports, per
//! phase, who computed and who communicated — using the substrate's
//! per-rank traffic counters to show the communication pattern of each of
//! the four phases (FACT, LBCAST, RS, UPDATE).
//!
//! ```text
//! cargo run -p hpl-examples --bin phase_trace
//! ```

use hpl_comm::{Grid, GridOrder, Universe};
use rhpl_core::dist::Axis;
use rhpl_core::fact::{panel_factor, FactInput};
use rhpl_core::panel::{host_view, lbcast, pack_panel, panel_from_host, panel_to_host, PanelGeom};
use rhpl_core::swap::{row_swap, ColRange, SwapPlan};
use rhpl_core::update::full_update;
use rhpl_core::{HplConfig, LocalMatrix};

fn main() {
    let cfg = HplConfig::new(64, 16, 2, 2);
    println!(
        "one HPL iteration on a 2x2 grid, N={}, NB={} (paper Fig 2)\n",
        cfg.n, cfg.nb
    );
    let logs = Universe::run(cfg.ranks(), |comm| {
        let grid = Grid::new(comm, cfg.p, cfg.q, GridOrder::ColumnMajor);
        let mut a = LocalMatrix::<f64>::generate(cfg.n, cfg.nb, &grid, cfg.seed);
        let pool = hpl_threads::Pool::new(1);
        let mut log = Vec::new();
        let me = (grid.myrow(), grid.mycol());
        let snap = |c: &hpl_comm::Communicator| c.stats().snapshot();

        // Phase a: FACT — only the panel-owning process column works.
        let g = PanelGeom::new(&a, &grid, 0, cfg.nb);
        let before = snap(grid.col());
        let packed = if g.in_panel_col {
            let mut host = panel_to_host(&a, &g);
            let rows: Axis = a.rows;
            let out = {
                let inp = FactInput {
                    col_comm: grid.col(),
                    rows,
                    k0: 0,
                    jb: g.jb,
                    lb: g.lb,
                    is_curr: g.in_curr_row,
                    pool: &pool,
                    opts: cfg.fact,
                };
                let mut hv = host_view(&mut host, &g);
                panel_factor(&inp, &mut hv).expect("nonsingular")
            };
            panel_from_host(&mut a, &g, &host, &out.top);
            Some((pack_panel(&g, &out.top, &out.ipiv, &host), out.ipiv))
        } else {
            None
        };
        let after = snap(grid.col());
        log.push(format!(
            "FACT   rank {me:?}: {} ({} column-collective messages sent)",
            if g.in_panel_col {
                "factored local panel rows"
            } else {
                "idle (not in panel column)"
            },
            after.0 - before.0
        ));

        // Phase b: LBCAST — panel column broadcasts along process rows.
        let before = snap(grid.row());
        let panel = lbcast(
            grid.row(),
            cfg.bcast,
            &g,
            packed.as_ref().map(|(b, _)| b.clone()),
        )
        .expect("panel broadcast");
        let after = snap(grid.row());
        log.push(format!(
            "LBCAST rank {me:?}: {} row messages sent, ipiv = {:?}",
            after.0 - before.0,
            panel.ipiv
        ));

        // Phase c: RS — scatterv + allgatherv within each process column.
        let plan = SwapPlan::build(0, cfg.nb, &panel.ipiv);
        let range = ColRange {
            start: a.cols.local_lower_bound(cfg.nb),
            end: a.nloc,
        };
        let before = snap(grid.col());
        let rows: Axis = a.rows;
        let mut av = a.view_mut();
        let u =
            row_swap(grid.col(), rows, &plan, g.prow, &mut av, range, cfg.swap).expect("row swap");
        let after = snap(grid.col());
        log.push(format!(
            "RS     rank {me:?}: {} moves, U is {}x{}, {} column messages sent",
            plan.moves.len(),
            u.rows(),
            u.cols(),
            after.0 - before.0
        ));

        // Phase d: UPDATE — pure local computation, no messages.
        let before = snap(grid.world());
        let mut av = a.view_mut();
        full_update(&g, &panel, u, &mut av, range);
        let after = snap(grid.world());
        log.push(format!(
            "UPDATE rank {me:?}: DTRSM + DGEMM on {} local columns, {} messages (none expected)",
            range.width(),
            after.0 - before.0
        ));
        log
    });
    for (rank, log) in logs.iter().enumerate() {
        println!("rank {rank}:");
        for line in log {
            println!("  {line}");
        }
    }
}
