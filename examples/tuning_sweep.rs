//! Tuning-sweep scenario: what an operator bringing up HPL on a new system
//! does — sweep the blocking factor, broadcast algorithm and split
//! fraction on real (scaled-down) runs and pick the best combination.
//!
//! ```text
//! cargo run --release -p hpl-examples --bin tuning_sweep [N]
//! ```

use hpl_comm::{BcastAlgo, Universe};
use rhpl_core::config::Schedule;
use rhpl_core::{run_hpl, HplConfig};

fn score(cfg: &HplConfig) -> f64 {
    let results = Universe::run(cfg.ranks(), |comm| run_hpl(comm, cfg).expect("nonsingular"));
    results[0].gflops
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(576);
    let (p, q) = (2usize, 2usize);
    println!("tuning sweep at N={n}, grid {p}x{q} (each cell = one real run)\n");

    // 1. Blocking factor: balance of DGEMM efficiency vs pipeline grain.
    println!("NB sweep (split 50%, 1ringM):");
    let mut best_nb = (0usize, 0.0f64);
    for nb in [16usize, 24, 32, 48, 64, 96] {
        let mut cfg = HplConfig::new(n - n % nb, nb, p, q);
        cfg.schedule = Schedule::SplitUpdate { frac: 0.5 };
        let g = score(&cfg);
        println!("  NB={nb:3}: {g:8.2} GFLOPS");
        if g > best_nb.1 {
            best_nb = (nb, g);
        }
    }
    println!("  -> best NB = {}\n", best_nb.0);

    // 2. Broadcast algorithm at the chosen NB.
    println!("LBCAST algorithm sweep (NB={}):", best_nb.0);
    let mut best_algo = (BcastAlgo::OneRing, 0.0f64);
    for algo in BcastAlgo::ALL {
        let nb = best_nb.0;
        let mut cfg = HplConfig::new(n - n % nb, nb, p, q);
        cfg.schedule = Schedule::SplitUpdate { frac: 0.5 };
        cfg.bcast = algo;
        let g = score(&cfg);
        println!("  {:>8}: {g:8.2} GFLOPS", algo.name());
        if g > best_algo.1 {
            best_algo = (algo, g);
        }
    }
    println!("  -> best algorithm = {}\n", best_algo.0.name());

    // 3. Split fraction (the SIII.C tunable).
    println!(
        "split-fraction sweep (NB={}, {}):",
        best_nb.0,
        best_algo.0.name()
    );
    let mut best_frac = (0.0f64, 0.0f64);
    for frac in [0.0, 0.25, 0.5, 0.75] {
        let nb = best_nb.0;
        let mut cfg = HplConfig::new(n - n % nb, nb, p, q);
        cfg.bcast = best_algo.0;
        cfg.schedule = if frac == 0.0 {
            Schedule::LookAhead
        } else {
            Schedule::SplitUpdate { frac }
        };
        let g = score(&cfg);
        println!("  frac={frac:.2}: {g:8.2} GFLOPS");
        if g > best_frac.1 {
            best_frac = (frac, g);
        }
    }
    println!(
        "\nchosen configuration: NB={}, bcast={}, split={:.2} -> {:.2} GFLOPS",
        best_nb.0,
        best_algo.0.name(),
        best_frac.0,
        best_frac.1
    );
}
