//! HPL-MxP scenario: solve an HPL-style random dense system with the
//! mixed-precision scheme — O(n^3) factorization in `f32`, O(n^2)
//! refinement in `f64` — and compare cost and accuracy against the pure
//! double-precision factorization.
//!
//! ```text
//! cargo run --release -p hpl-examples --bin mixed_precision [N]
//! ```

use std::time::Instant;

use hpl_blas::mat::Matrix;
use hpl_blas::{getrf, getrs};
use hpl_mxp::{scaled_residual, solve_gmres, solve_ir, DenseOp, GmresParams, LowLu};
use rhpl_core::MatGen;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(512);
    let nb = 64usize;
    println!("HPL-MxP demonstration, N = {n} (random HPL-style system)\n");

    let gen = MatGen::new(4242, n);
    let op = DenseOp::new(n, |i, j| gen.entry(i, j));
    let b: Vec<f64> = (0..n).map(|i| gen.entry(i, n)).collect();

    // Pure double-precision reference.
    let t0 = Instant::now();
    let mut a64 = Matrix::from_fn(n, n, |i, j| gen.entry(i, j));
    let mut piv = vec![0usize; n];
    let mut av = a64.view_mut();
    getrf(&mut av, &mut piv, nb).expect("nonsingular");
    let mut x64 = b.clone();
    getrs(&av, &piv, &mut x64);
    let t_fp64 = t0.elapsed().as_secs_f64();
    println!(
        "FP64 LU:            {:.3} s, scaled residual {:.4}",
        t_fp64,
        scaled_residual(&op, &b, &x64)
    );

    // Mixed precision: f32 factorization...
    let t0 = Instant::now();
    let lu = LowLu::factor(&op, nb).expect("nonsingular");
    let t_factor32 = t0.elapsed().as_secs_f64();
    let x32 = lu.apply(&b);
    println!(
        "FP32 LU alone:      {:.3} s, scaled residual {:.4} ({})",
        t_factor32,
        scaled_residual(&op, &b, &x32),
        if scaled_residual(&op, &b, &x32) < 16.0 {
            "passes — refine anyway"
        } else {
            "FAILS HPL"
        }
    );

    // ... plus classic iterative refinement ...
    let t0 = Instant::now();
    let ir = solve_ir(&op, &lu, &b, 20);
    let t_ir = t0.elapsed().as_secs_f64();
    println!(
        "  + refinement:     {:.3} s, {} sweep(s), residual {:.4} ({})",
        t_ir,
        ir.history.len() - 1,
        ir.history.last().unwrap(),
        if ir.converged { "PASSED" } else { "FAILED" }
    );

    // ... or GMRES (the HPL-MxP reference scheme).
    let t0 = Instant::now();
    let g = solve_gmres(
        &op,
        &lu,
        &b,
        GmresParams {
            restart: 30,
            ..Default::default()
        },
    );
    let t_g = t0.elapsed().as_secs_f64();
    println!(
        "  + GMRES:          {:.3} s, residual {:.4} ({})",
        t_g,
        g.history.last().unwrap(),
        if g.converged { "PASSED" } else { "FAILED" }
    );

    println!(
        "\nfactorization speed ratio (fp64 / fp32): {:.2}x",
        t_fp64 / t_factor32
    );
    println!("(on MI250X-class hardware the matrix engines make this ~4x, which is");
    println!("why HPL-MxP scores land several times above HPL on the same machine)");
    assert!(ir.converged && g.converged);
}
