//! Fig 1 rendering: the 2D block-cyclic distribution of a matrix over a
//! process grid, as an ASCII ownership map.
//!
//! ```text
//! cargo run -p hpl-examples --bin block_cyclic_map [P] [Q] [BLOCKS]
//! ```

use rhpl_core::dist::{numroc, owner};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let p: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let q: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let blocks: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(8);
    let nb = 4usize; // rendering granularity: one cell per block
    let n = blocks * nb;

    println!(
        "2D block-cyclic distribution (paper Fig 1): {blocks}x{blocks} blocks on {p}x{q} grid"
    );
    println!("cell = one NB x NB block, labelled with its owner rank (column-major)\n");
    for bi in 0..blocks {
        let mut line = String::new();
        for bj in 0..blocks {
            let prow = owner(bi * nb, nb, p);
            let pcol = owner(bj * nb, nb, q);
            let rank = pcol * p + prow;
            line.push_str(&format!("{rank:2} "));
        }
        println!("  {line}");
    }
    println!("\nlocal matrix sizes (rows x cols per rank):");
    for prow in 0..p {
        for pcol in 0..q {
            let rank = pcol * p + prow;
            println!(
                "  rank {rank} = ({prow},{pcol}): {} x {}",
                numroc(n, nb, prow, p),
                numroc(n, nb, pcol, q)
            );
        }
    }
}
