//! Frontier-node scenario: reproduce the paper's single-node study
//! (§IV.A) end to end — the calibrated model at full scale side by side
//! with a real scaled-down run of the same pipeline.
//!
//! ```text
//! cargo run --release -p hpl-examples --bin frontier_node
//! ```

use hpl_comm::Universe;
use hpl_sim::{iteration_spans, render, NodeModel, Pipeline, RunParams, Simulator};
use rhpl_core::config::Schedule;
use rhpl_core::{run_hpl, HplConfig};

fn main() {
    // ---- Full-scale model (the paper's machine). ----
    let node = NodeModel::frontier();
    let params = RunParams::paper_single_node();
    let sim = Simulator::new(node, params);
    let r = sim.run(Pipeline::SplitUpdate);
    println!("== Crusher single node, modeled (N=256000, NB=512, 4x2, split 50%) ==");
    println!("score:            {:.1} TFLOPS   (paper: 153)", r.tflops);
    println!("run time:         {:.1} s", r.total_time);
    println!(
        "regime boundary:  iteration {} of {}   (paper: ~250)",
        r.iters
            .iter()
            .position(|x| x.time > x.gpu_active * 1.02)
            .unwrap_or(r.iters.len()),
        r.iters.len()
    );
    println!(
        "hidden MPI time:  {:.0}%   (paper: ~75%)\n",
        r.hidden_time_fraction * 100.0
    );
    println!("iteration 50 timeline (cf. paper Fig 6):");
    print!(
        "{}",
        render(&iteration_spans(&sim, 50, Pipeline::SplitUpdate), 90)
    );
    println!("\niteration 400 (latency-bound tail, cf. Fig 7's right side):");
    let tail = &r.iters[400];
    println!(
        "  total {:.1} ms | gpu {:.1} ms | fact {:.1} ms | mpi {:.1} ms | xfer {:.1} ms",
        tail.time * 1e3,
        tail.gpu_active * 1e3,
        tail.fact * 1e3,
        tail.mpi * 1e3,
        tail.transfer * 1e3
    );

    // ---- Functional run at laptop scale, same pipeline. ----
    let mut cfg = HplConfig::new(768, 32, 4, 2);
    cfg.schedule = Schedule::SplitUpdate { frac: 0.5 };
    cfg.fact.threads = 2;
    println!("\n== Same pipeline executed for real (N=768, NB=32, 4x2 on threads) ==");
    let results = Universe::run(cfg.ranks(), |comm| {
        run_hpl(comm, &cfg).expect("nonsingular")
    });
    println!(
        "wall {:.3} s -> {:.2} GFLOPS over 8 rank-threads",
        results[0].wall, results[0].gflops
    );
    let owners: Vec<&rhpl_core::IterTiming> = (0..cfg.iterations())
        .map(|it| {
            results
                .iter()
                .map(|r| &r.timings[it])
                .find(|t| t.diag_owner)
                .expect("diag owner")
        })
        .collect();
    let head: f64 = owners[..5].iter().map(|t| t.total).sum::<f64>() / 5.0;
    let tail: f64 = owners[owners.len() - 5..]
        .iter()
        .map(|t| t.total)
        .sum::<f64>()
        / 5.0;
    println!(
        "avg iteration: {:.3} ms early vs {:.3} ms late (work shrinks)",
        head * 1e3,
        tail * 1e3
    );
}
