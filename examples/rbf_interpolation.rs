//! Using rhpl as a *library solver*: radial-basis-function interpolation.
//!
//! Scattered-data interpolation with Gaussian RBFs produces exactly the
//! kind of large dense linear system the paper's introduction motivates:
//! `A[i][j] = exp(-|x_i - x_j|^2 / (2 sigma^2))` over interpolation nodes,
//! solved against samples of a target function. We build the system through
//! the `run_hpl_with` fill-function API (no materialized global matrix),
//! solve it on a 2x2 thread grid with the full rocHPL pipeline, and check
//! the interpolant reproduces the target at the nodes and between them.
//!
//! ```text
//! cargo run --release -p hpl-examples --bin rbf_interpolation [N]
//! ```

use hpl_comm::{Grid, GridOrder, Universe};
use rhpl_core::config::Schedule;
use rhpl_core::{run_hpl_with, verify_with, HplConfig};

/// Interpolation nodes: a jittered 1D grid on [0, 1].
fn node(i: usize, n: usize) -> f64 {
    let t = i as f64 / (n - 1) as f64;
    t + 0.3 / n as f64 * ((i * 2654435761) % 97) as f64 / 97.0
}

/// The function being interpolated.
fn target(x: f64) -> f64 {
    (6.0 * x).sin() + 0.5 * (17.0 * x).cos()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(512);
    let nb = 32usize;
    let sigma = 2.0 / n as f64 * 8.0;
    let (p, q) = (2usize, 2usize);

    println!("RBF interpolation of sin(6x) + 0.5 cos(17x) with {n} Gaussian centers");
    println!("dense {n}x{n} kernel system solved by the rocHPL pipeline on a {p}x{q} grid\n");

    // The fill function defines the augmented system; a small ridge on the
    // diagonal keeps the kernel matrix comfortably nonsingular.
    let fill = move |i: usize, j: usize| -> f64 {
        if j == n {
            target(node(i, n))
        } else {
            let d = node(i, n) - node(j, n);
            let k = (-d * d / (2.0 * sigma * sigma)).exp();
            if i == j {
                k + 1e-8
            } else {
                k
            }
        }
    };

    let mut cfg = HplConfig::new(n, nb, p, q);
    cfg.schedule = Schedule::SplitUpdate { frac: 0.5 };
    cfg.fact.threads = 2;

    let results = Universe::run(cfg.ranks(), |comm| {
        run_hpl_with(comm, &cfg, &fill).expect("nonsingular")
    });
    let weights = results[0].x.clone();
    println!(
        "solved in {:.3} s ({:.2} GFLOPS)",
        results[0].wall, results[0].gflops
    );

    // HPL-style residual on the custom system.
    let w = weights.clone();
    let res = Universe::run(cfg.ranks(), |comm| {
        let grid = Grid::new(comm, p, q, GridOrder::ColumnMajor);
        verify_with(&grid, n, nb, &fill, &w).expect("verification collectives")
    })[0];
    println!(
        "scaled residual {:.4} -> {}",
        res.scaled,
        if res.passed() { "PASSED" } else { "FAILED" }
    );
    assert!(res.passed());

    // Evaluate the interpolant at the nodes and at off-node probes.
    let interp = |x: f64| -> f64 {
        weights
            .iter()
            .enumerate()
            .map(|(j, &wj)| {
                let d = x - node(j, n);
                wj * (-d * d / (2.0 * sigma * sigma)).exp()
            })
            .sum()
    };
    let node_err = (0..n)
        .map(|i| (interp(node(i, n)) - target(node(i, n))).abs())
        .fold(0.0f64, f64::max);
    let probe_err = (0..1000)
        .map(|k| {
            let x = 0.05 + 0.9 * k as f64 / 999.0;
            (interp(x) - target(x)).abs()
        })
        .fold(0.0f64, f64::max);
    println!("max error at nodes:    {node_err:.3e}");
    println!("max error off nodes:   {probe_err:.3e} (interior probes)");
    assert!(node_err < 1e-5, "interpolation must reproduce node values");
    assert!(
        probe_err < 1e-2,
        "interpolant must track the target between nodes"
    );
    println!("\ninterpolation quality OK");
}
